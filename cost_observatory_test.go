package vamana

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vamana/internal/obs"
)

// skewedDoc is a document built to misestimate deterministically: the
// only <b> under an <a> is one of 64, so the child::b step in //a/b gets
// a Table I OUT bound of COUNT(b)=64 against an actual of 1 — a q-error
// of exactly 64, large enough to trigger calibration on one sample.
func skewedDoc(t testing.TB, db *DB) *Document {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r><a><b/></a><c>")
	for i := 0; i < 63; i++ {
		sb.WriteString("<b/>")
	}
	sb.WriteString("</c></r>")
	doc, err := db.LoadXMLString("skewed", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// geomeanQError runs expr's optimized plan to completion and returns the
// geometric-mean q-error over its cost-annotated operators, via the same
// Analyze machinery ExplainAnalyze renders.
func geomeanQError(t testing.TB, db *DB, doc *Document, expr string) float64 {
	t.Helper()
	q, err := db.CompileOptimized(doc, expr)
	if err != nil {
		t.Fatalf("CompileOptimized(%s): %v", expr, err)
	}
	an, err := q.q.Analyze(doc.id)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", expr, err)
	}
	var sumLog float64
	n := 0
	for _, st := range an.Stats {
		if st.Op == nil || !st.Op.Cost.Done {
			continue
		}
		sumLog += math.Log2(obs.QError(st.Op.Cost.Out, st.Out))
		n++
	}
	if n == 0 {
		t.Fatalf("Analyze(%s): no cost-annotated operators", expr)
	}
	return math.Exp2(sumLog / float64(n))
}

func TestCostObservatoryProfile(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)

	if p, ok := db.CostProfile(); !ok {
		t.Fatal("CostProfile not available on a default-options database")
	} else if p.Observations != 0 {
		t.Fatalf("fresh database already has %d observations", p.Observations)
	}

	// Cold and warm passes: the fold must fire on cache hits too.
	for pass := 0; pass < 2; pass++ {
		for _, expr := range workloadExprs {
			drainCount(t, db, doc, expr)
		}
	}

	p, ok := db.CostProfile()
	if !ok {
		t.Fatal("CostProfile unavailable after queries")
	}
	if p.Observations == 0 || len(p.Classes) == 0 {
		t.Fatalf("observatory empty after workload: %+v", p)
	}
	if p.CalibrationEnabled {
		t.Error("calibration reported enabled on a default-options database")
	}
	var sum uint64
	for i, c := range p.Classes {
		sum += c.Samples
		if c.Samples == 0 {
			t.Errorf("class %s/%q has zero samples", c.Axis, c.Rewrite)
		}
		if c.P50 < 1 || c.P95 < c.P50 || c.Max < 1 {
			t.Errorf("class %s/%q has inconsistent quantiles: %+v", c.Axis, c.Rewrite, c)
		}
		if c.Factor != 1 {
			t.Errorf("class %s/%q has factor %g with calibration off", c.Axis, c.Rewrite, c.Factor)
		}
		if i > 0 && p.Classes[i-1].P95 < c.P95 {
			t.Errorf("classes not sorted worst-first: %g before %g", p.Classes[i-1].P95, c.P95)
		}
	}
	if sum != p.Observations {
		t.Errorf("class samples sum to %d, profile says %d", sum, p.Observations)
	}

	// At least one xmark workload step misestimates enough to record a
	// worst offender with its expression.
	anyOffender := false
	for _, c := range p.Classes {
		if c.Worst.QError >= 2 && c.Worst.Expr != "" && c.Worst.Op != "" {
			anyOffender = true
		}
	}
	if !anyOffender {
		t.Error("no worst offender recorded across the workload")
	}

	// The text rendering carries the same totals.
	var txt bytes.Buffer
	p.WriteText(&txt)
	if !strings.Contains(txt.String(), "cost-model observatory") ||
		!strings.Contains(txt.String(), "AXIS") {
		t.Errorf("WriteText output malformed:\n%s", txt.String())
	}

	// Disabling the observatory removes the profile entirely.
	off, err := Open(Options{DisableCostObservatory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	offDoc := loadAuction(t, off, 0.003)
	drainCount(t, off, offDoc, workloadExprs[0])
	if _, ok := off.CostProfile(); ok {
		t.Error("CostProfile available despite DisableCostObservatory")
	}
}

func TestCostDebugEndpointsAndMetrics(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)
	for _, expr := range workloadExprs {
		drainCount(t, db, doc, expr)
	}
	h := db.DebugHandler("/debug/vamana")

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/debug/vamana/cost")
	if rec.Code != 200 {
		t.Fatalf("/cost status %d", rec.Code)
	}
	var p CostProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("/cost JSON: %v", err)
	}
	if p.Observations == 0 || len(p.Classes) == 0 {
		t.Errorf("/cost JSON empty: %+v", p)
	}

	rec = get("/debug/vamana/cost?format=text")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "cost-model observatory") {
		t.Errorf("/cost?format=text status %d body %q", rec.Code, rec.Body.String())
	}

	// The index page links every endpoint including the pprof mounts.
	rec = get("/debug/vamana/")
	if rec.Code != 200 {
		t.Fatalf("index status %d", rec.Code)
	}
	for _, link := range []string{"/debug/vamana/cost", "/debug/vamana/metrics", "/debug/pprof/"} {
		if !strings.Contains(rec.Body.String(), link) {
			t.Errorf("index page missing link %q", link)
		}
	}

	// The stdlib pprof handlers are live on the same handler.
	rec = get("/debug/pprof/")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/ status %d", rec.Code)
	}
	rec = get("/debug/pprof/cmdline")
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", rec.Code)
	}

	// The Prometheus exposition carries the labeled class series.
	var prom bytes.Buffer
	if err := db.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"vamana_cost_observations_total",
		"vamana_cost_class_samples{axis=",
		"vamana_cost_class_qerror_p95{axis=",
	} {
		if !strings.Contains(prom.String(), series) {
			t.Errorf("metrics exposition missing %q", series)
		}
	}

	// Disabled observatory: /cost 404s but the rest of the page works.
	off, err := Open(Options{DisableCostObservatory: true})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	rec = httptest.NewRecorder()
	off.DebugHandler("/debug/vamana").ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vamana/cost", nil))
	if rec.Code != 404 {
		t.Errorf("/cost on disabled observatory: status %d, want 404", rec.Code)
	}
}

// TestSlowQueryWorstOpAnnotation drives a deterministically misestimated
// query through a 1ns slow threshold and checks the ring entry names the
// worst operator.
func TestSlowQueryWorstOpAnnotation(t *testing.T) {
	var buf bytes.Buffer
	db, err := Open(Options{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := skewedDoc(t, db)

	if n := drainCount(t, db, doc, "//a/b"); n != 1 {
		t.Fatalf("//a/b returned %d results, want 1", n)
	}
	slow := db.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("no slow queries recorded")
	}
	sq := slow[0]
	if sq.WorstOp == "" || sq.WorstQErr < 2 {
		t.Fatalf("slow entry missing worst-op annotation: %+v", sq)
	}
	if !strings.Contains(sq.WorstOp, "b") {
		t.Errorf("worst op %q does not name the misestimated step", sq.WorstOp)
	}
	if !strings.Contains(buf.String(), "worstop=") || !strings.Contains(buf.String(), "qerr=") {
		t.Errorf("slow log line missing miscost annotation: %q", buf.String())
	}
}

// TestCostCalibrationLearns checks the feedback loop end to end on the
// skewed document: the first fold learns a 64x overestimate, bumps the
// statistics epoch (invalidating the cached plan), and subsequent
// compiles carry a corrected, near-exact OUT bound.
func TestCostCalibrationLearns(t *testing.T) {
	db, err := Open(Options{CostCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := skewedDoc(t, db)
	const expr = "//a/b"

	before := geomeanQError(t, db, doc, expr)

	// Train: every serving-path run folds (est, act) pairs into the
	// class EWMAs; the first one alone drifts far past the bump
	// threshold.
	want := drainCount(t, db, doc, expr)
	p, ok := db.CostProfile()
	if !ok || !p.CalibrationEnabled {
		t.Fatalf("calibration not reported enabled: %+v", p)
	}
	if p.EpochBumps == 0 {
		t.Fatalf("no epoch bump after a 64x misestimate: %+v", p)
	}
	// The bump must invalidate the cached plan on the next lookup, and
	// the recompiled (calibrated) plan must return identical results.
	csBefore := db.CacheStats()
	for i := 0; i < 30; i++ {
		if n := drainCount(t, db, doc, expr); n != want {
			t.Fatalf("run %d returned %d results, want %d", i, n, want)
		}
	}
	if cs := db.CacheStats(); cs.Invalidations <= csBefore.Invalidations {
		t.Errorf("epoch bump did not invalidate cached plans: %+v -> %+v", csBefore, cs)
	}

	after := geomeanQError(t, db, doc, expr)
	t.Logf("skewed //a/b geomean q-error: uncalibrated %.2f, calibrated %.2f", before, after)
	if after >= before {
		t.Errorf("calibration did not reduce q-error: %.2f -> %.2f", before, after)
	}
	p, _ = db.CostProfile()
	anyFactor := false
	for _, c := range p.Classes {
		if c.Factor < 1 {
			anyFactor = true
		}
		if c.Factor < 1.0/1024 {
			t.Errorf("factor below floor: %+v", c)
		}
	}
	if !anyFactor {
		t.Error("no class learned a correction factor below 1")
	}
}

// TestCostCalibrationImprovesXmark pairs two databases over the same
// xmark document — calibration off and on — trains the calibrated one on
// the paper's Q1-Q5 workload, and asserts the workload's geometric-mean
// q-error drops. The numbers logged here are the ones EXPERIMENTS.md
// reports.
func TestCostCalibrationImprovesXmark(t *testing.T) {
	open := func(calibrate bool) (*DB, *Document) {
		db, err := Open(Options{CostCalibration: calibrate})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db, loadAuction(t, db, 0.003)
	}
	dbOff, docOff := open(false)
	dbOn, docOn := open(true)

	// Train both the same way (the uncalibrated one just accumulates).
	for round := 0; round < 20; round++ {
		for _, expr := range workloadExprs {
			drainCount(t, dbOff, docOff, expr)
			drainCount(t, dbOn, docOn, expr)
		}
	}

	var sumOff, sumOn float64
	for _, expr := range workloadExprs {
		gOff := geomeanQError(t, dbOff, docOff, expr)
		gOn := geomeanQError(t, dbOn, docOn, expr)
		t.Logf("%-50s geomean q-error: raw %6.2f calibrated %6.2f", expr, gOff, gOn)
		sumOff += math.Log2(gOff)
		sumOn += math.Log2(gOn)
	}
	gOff := math.Exp2(sumOff / float64(len(workloadExprs)))
	gOn := math.Exp2(sumOn / float64(len(workloadExprs)))
	t.Logf("workload geomean q-error: raw %.2f calibrated %.2f", gOff, gOn)
	if gOn >= gOff {
		t.Errorf("calibration did not improve workload q-error: %.3f -> %.3f", gOff, gOn)
	}
}

// TestCostObservatoryConcurrentFolds exercises the striped accumulators,
// lazy class creation, EWMA CASes, and epoch bumps from many goroutines
// at once; its real assertions are the race detector's.
func TestCostObservatoryConcurrentFolds(t *testing.T) {
	db, err := Open(Options{CostCalibration: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)
	skew := skewedDoc(t, db) // drives epoch bumps concurrently

	want := make([]int, len(workloadExprs))
	for i, expr := range workloadExprs {
		want[i] = drainCount(t, db, doc, expr)
	}
	wantSkew := drainCount(t, db, skew, "//a/b")

	const goroutines, perG = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if (g+i)%4 == 0 {
					res, err := db.Query(skew, "//a/b")
					if err != nil {
						errs <- err
						return
					}
					n := 0
					for res.Next() {
						n++
					}
					if n != wantSkew {
						t.Errorf("concurrent skew query returned %d, want %d", n, wantSkew)
					}
					continue
				}
				qi := (g + i) % len(workloadExprs)
				res, err := db.Query(doc, workloadExprs[qi])
				if err != nil {
					errs <- err
					return
				}
				n := 0
				for res.Next() {
					n++
				}
				if err := res.Err(); err != nil {
					errs <- err
					return
				}
				if n != want[qi] {
					t.Errorf("concurrent query %q returned %d, want %d", workloadExprs[qi], n, want[qi])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	p, ok := db.CostProfile()
	if !ok || p.Observations == 0 {
		t.Fatalf("observatory empty after concurrent load: %+v", p)
	}
	// Profile under concurrent load must stay internally consistent.
	var sum uint64
	for _, c := range p.Classes {
		sum += c.Samples
	}
	if sum != p.Observations {
		t.Errorf("class samples sum %d != observations %d", sum, p.Observations)
	}
}

// TestCalibrationDifferential is the on/off differential harness: over a
// seeded random corpus, a calibrating database and a plain one must
// return byte-identical ordered results — before and after calibration
// has had a pass to learn factors and recompile plans.
func TestCalibrationDifferential(t *testing.T) {
	const seed, docs, queriesPerDoc = 9001, 6, 20
	for d := 0; d < docs; d++ {
		docSeed := int64(seed + d)
		g := &diffGen{r: rand.New(rand.NewSource(docSeed))}
		src := g.genDoc()
		queries := make([]string, queriesPerDoc)
		for i := range queries {
			queries[i] = g.genQuery()
		}

		dbOff, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		dbOn, err := Open(Options{CostCalibration: true})
		if err != nil {
			t.Fatal(err)
		}
		docOff, err := dbOff.LoadXMLString("doc", src)
		if err != nil {
			t.Fatalf("doc seed %d: %v", docSeed, err)
		}
		docOn, err := dbOn.LoadXMLString("doc", src)
		if err != nil {
			t.Fatalf("doc seed %d: %v", docSeed, err)
		}

		// Pass 0 runs on raw estimates while calibration learns; pass 1
		// runs against whatever corrected factors and recompiled plans
		// pass 0 produced. Results must never move.
		for pass := 0; pass < 2; pass++ {
			for _, expr := range queries {
				offServed := servedSortedKeys(t, dbOff, docOff, expr)
				onServed := servedSortedKeys(t, dbOn, docOn, expr)
				if !equalKeys(offServed, onServed) {
					t.Fatalf("served results diverge (seed %d pass %d expr %q):\noff: %v\non:  %v\ndoc: %s",
						docSeed, pass, expr, offServed, onServed, src)
				}
				offOrdered := orderedKeys(t, dbOff, docOff, expr)
				onOrdered := orderedKeys(t, dbOn, docOn, expr)
				if !equalKeys(offOrdered, onOrdered) {
					t.Fatalf("ordered results diverge (seed %d pass %d expr %q):\noff: %v\non:  %v\ndoc: %s",
						docSeed, pass, expr, offOrdered, onOrdered, src)
				}
			}
		}
		dbOff.Close()
		dbOn.Close()
	}
}

// servedSortedKeys drives expr through the serving path (feeding the
// observatory fold) and returns its result keys sorted, since pipelined
// emission order is plan-dependent.
func servedSortedKeys(t *testing.T, db *DB, doc *Document, expr string) []string {
	t.Helper()
	res, err := db.Query(doc, expr)
	if err != nil {
		t.Fatalf("Query(%s): %v", expr, err)
	}
	var keys []string
	for res.Next() {
		keys = append(keys, res.Key())
	}
	if err := res.Err(); err != nil {
		t.Fatalf("Query(%s) drain: %v", expr, err)
	}
	sort.Strings(keys)
	return keys
}

// orderedKeys returns expr's document-ordered result keys through the
// cached optimized plan — the canonical byte-comparable stream.
func orderedKeys(t *testing.T, db *DB, doc *Document, expr string) []string {
	t.Helper()
	q, err := db.CompileCached(doc, expr, true)
	if err != nil {
		t.Fatalf("CompileCached(%s): %v", expr, err)
	}
	res, err := q.ExecuteOrdered(doc)
	if err != nil {
		t.Fatalf("ExecuteOrdered(%s): %v", expr, err)
	}
	keys, err := res.Keys()
	if err != nil {
		t.Fatalf("ExecuteOrdered(%s) drain: %v", expr, err)
	}
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
