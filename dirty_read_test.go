package vamana

import (
	"errors"
	"strings"
	"testing"
)

var errAbort = errors.New("abort transaction")

// queryKeys runs expr against doc and returns the matched FLEX keys.
func queryKeys(db *DB, doc *Document, expr string) ([]string, error) {
	res, err := db.Query(doc, expr)
	if err != nil {
		return nil, err
	}
	return res.Keys()
}

// TestNoDirtyReadsDuringTransaction is the regression test for the
// DESIGN §13 limitation: direct Document reads (CountName, Stats, Node,
// StringValue, WriteXML, queries) issued while a DB.Update is open used
// to hit the live trees and observe the transaction's buffered writes.
// They must observe the last committed state instead, from the very
// first transaction on.
func TestNoDirtyReadsDuringTransaction(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("d", `<lib><book><title>Committed</title></book></lib>`)
	if err != nil {
		t.Fatal(err)
	}

	keys, err := queryKeys(db, doc, "//book")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Fatalf("setup: %d books", len(keys))
	}

	// First-ever transaction: no commit has installed a shared snapshot
	// yet, so this exercises Update's pre-install path.
	if err := db.Update(func(tx *Txn) error {
		root, err := queryKeys(db, doc, "/lib")
		if err != nil {
			return err
		}
		bk, err := tx.InsertElement(doc, root[0], -1, "book")
		if err != nil {
			return err
		}
		ttl, err := tx.InsertElement(doc, bk, -1, "title")
		if err != nil {
			return err
		}
		if _, err := tx.InsertText(doc, ttl, -1, "Buffered"); err != nil {
			return err
		}

		// Every direct read below runs mid-transaction and must see only
		// the committed single-book state.
		if n, err := doc.CountName("book"); err != nil || n != 1 {
			t.Errorf("mid-txn CountName(book) = %d, %v; want 1 (dirty read)", n, err)
		}
		if tc, err := doc.TextCount("Buffered"); err != nil || tc != 0 {
			t.Errorf("mid-txn TextCount(Buffered) = %d, %v; want 0 (dirty read)", tc, err)
		}
		st, err := doc.Stats()
		if err != nil {
			t.Errorf("mid-txn Stats: %v", err)
		} else if st.Elements != 3 {
			t.Errorf("mid-txn Stats.Elements = %d, want 3 (lib, book, title)", st.Elements)
		}
		if _, ok, err := doc.Node(bk); err != nil || ok {
			t.Errorf("mid-txn Node(buffered key) visible = %v, %v; want absent", ok, err)
		}
		var sb strings.Builder
		if err := doc.WriteXML("a", &sb); err != nil {
			t.Errorf("mid-txn WriteXML: %v", err)
		} else if strings.Contains(sb.String(), "Buffered") {
			t.Errorf("mid-txn WriteXML leaked buffered text: %s", sb.String())
		}
		if got, err := queryKeys(db, doc, "//book"); err != nil || len(got) != 1 {
			t.Errorf("mid-txn query //book = %d keys, %v; want 1", len(got), err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// After commit everything is visible.
	if n, _ := doc.CountName("book"); n != 2 {
		t.Fatalf("post-commit CountName(book) = %d, want 2", n)
	}
	if tc, _ := doc.TextCount("Buffered"); tc != 1 {
		t.Fatalf("post-commit TextCount(Buffered) = %d, want 1", tc)
	}
	var sb strings.Builder
	if err := doc.WriteXML("a", &sb); err != nil || !strings.Contains(sb.String(), "Buffered") {
		t.Fatalf("post-commit WriteXML missing new book: %v %s", err, sb.String())
	}

	// Second transaction: the commit-installed shared snapshot covers
	// reads, and a rollback leaves the committed state untouched.
	rollback := func(tx *Txn) error {
		root, err := queryKeys(db, doc, "/lib")
		if err != nil {
			return err
		}
		if _, err := tx.InsertElement(doc, root[0], -1, "pamphlet"); err != nil {
			return err
		}
		if n, err := doc.CountName("pamphlet"); err != nil || n != 0 {
			t.Errorf("mid-txn CountName(pamphlet) = %d, %v; want 0 (dirty read)", n, err)
		}
		return errAbort
	}
	if err := db.Update(rollback); err != errAbort {
		t.Fatalf("rollback Update err = %v", err)
	}
	if n, _ := doc.CountName("pamphlet"); n != 0 {
		t.Fatalf("post-rollback CountName(pamphlet) = %d, want 0", n)
	}
	if n, _ := doc.CountName("book"); n != 2 {
		t.Fatalf("post-rollback CountName(book) = %d, want 2", n)
	}
}
