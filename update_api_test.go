package vamana

import (
	"testing"
)

// TestPublicUpdateAPI drives the update surface end to end: mutate,
// query, verify that plans see fresh statistics.
func TestPublicUpdateAPI(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("d", `<inventory><shelf/></inventory>`)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := db.Compile("//shelf")
	res, _ := q.Execute(doc)
	shelves, _ := res.Keys()
	if len(shelves) != 1 {
		t.Fatal("setup failed")
	}
	shelf := shelves[0]

	// Build content via the update API alone.
	for i := 0; i < 10; i++ {
		book, err := doc.InsertElement(shelf, -1, "book")
		if err != nil {
			t.Fatal(err)
		}
		title, err := doc.InsertElement(book, -1, "title")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := doc.InsertText(title, -1, "Systems Title"); err != nil {
			t.Fatal(err)
		}
		if _, err := doc.InsertAttribute(book, "isbn", "900-"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := doc.CountName("book"); n != 10 {
		t.Fatalf("CountName(book) = %d", n)
	}
	if tc, _ := doc.TextCount("Systems Title"); tc != 10 {
		t.Fatalf("TextCount = %d", tc)
	}

	// Queries see the new content, including attribute predicates.
	qb, _ := db.CompileOptimized(doc, "//book[title='Systems Title']")
	rb, _ := qb.Execute(doc)
	books, err := rb.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(books) != 10 {
		t.Fatalf("books via query = %d", len(books))
	}

	// Update one title and delete one book.
	qt, _ := db.Compile("//book[1]/title/text()")
	rt, _ := qt.Execute(doc)
	titles, _ := rt.Keys()
	if len(titles) != 1 {
		t.Fatalf("first book titles = %d", len(titles))
	}
	if err := doc.UpdateText(titles[0], "Revised Title"); err != nil {
		t.Fatal(err)
	}
	if tc, _ := doc.TextCount("Systems Title"); tc != 9 {
		t.Fatalf("TC after update = %d", tc)
	}
	if err := doc.DeleteSubtree(books[len(books)-1]); err != nil {
		t.Fatal(err)
	}
	if n, _ := doc.CountName("book"); n != 9 {
		t.Fatalf("books after delete = %d", n)
	}
	if err := doc.RenameElement(shelf, "case"); err != nil {
		t.Fatal(err)
	}
	if n, _ := doc.CountName("case"); n != 1 {
		t.Fatalf("CountName(case) = %d", n)
	}
}

// TestOptimizerSeesUpdatedStatistics: after mutations change which
// operator is the most selective, re-optimizing the same expression picks
// a different plan — the payoff of statistics that never go stale.
func TestOptimizerSeesUpdatedStatistics(t *testing.T) {
	db := openDB(t)
	doc, err := db.LoadXMLString("d", `<r><people><person><tag/></person></people><dump/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Make "tag" vastly more common than "person": the parent-inversion
	// rewrite of //tag/parent::person is then profitable.
	q, _ := db.Compile("//dump")
	res, _ := q.Execute(doc)
	dumpKeys, _ := res.Keys()
	dump := dumpKeys[0]
	for i := 0; i < 200; i++ {
		if _, err := doc.InsertElement(dump, -1, "tag"); err != nil {
			t.Fatal(err)
		}
	}

	expr := "//tag/parent::person"
	before, err := db.CompileOptimized(doc, expr)
	if err != nil {
		t.Fatal(err)
	}
	exBefore, _ := before.Explain(doc)

	// Results stay correct either way.
	rb, _ := before.Execute(doc)
	kb, _ := rb.Keys()
	if len(kb) != 1 {
		t.Fatalf("persons with tag = %d", len(kb))
	}

	// Now invert the skew: many persons, few tags.
	for i := 0; i < 200; i++ {
		if _, err := doc.InsertElement(dump, -1, "person"); err != nil {
			t.Fatal(err)
		}
	}
	after, err := db.CompileOptimized(doc, expr)
	if err != nil {
		t.Fatal(err)
	}
	exAfter, _ := after.Explain(doc)
	if exBefore == exAfter {
		t.Fatalf("optimizer ignored a 400-element statistics shift:\n%s", exAfter)
	}
	ra, _ := after.Execute(doc)
	ka, _ := ra.Keys()
	if len(ka) != 1 {
		t.Fatalf("persons with tag after updates = %d", len(ka))
	}
}
