package vamana

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vamana/internal/pager/faultfs"
)

// Crash-matrix test: for every write-path operation, kill the storage
// backend at every write and every sync the operation's commit performs
// (with the failing write torn at several offsets), reopen the surviving
// bytes, and assert the database is EITHER wholly in the pre-operation
// state OR wholly in the post-operation state — or that the failure is a
// typed storage error. Silent corruption — a store that opens and reads
// but matches neither state — fails the test.

const crashBaseXML = `<site><a>one</a><b kind="x">two</b><c>three</c></site>`
const crashSecondXML = `<extra><p>alpha</p><p>beta</p></extra>`

// crashOp is one write-path operation under test. Each op mutates the
// store through the public API; backend I/O happens when a flush runs
// (inside the op for "flush", inside Close for the rest), so apply
// returns its error: expected during fault runs, fatal during clean runs.
type crashOp struct {
	name  string
	apply func(t *testing.T, db *DB, doc *Document) error
}

// keyOf evaluates expr and returns the first result's FLEX key.
func keyOf(t *testing.T, db *DB, doc *Document, expr string) string {
	t.Helper()
	q, err := db.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.ExecuteOrdered(doc)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := res.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatalf("no result for %q", expr)
	}
	return keys[0]
}

var crashOps = []crashOp{
	{"load", func(t *testing.T, db *DB, _ *Document) error {
		_, err := db.LoadXMLString("doc2", crashSecondXML)
		return err
	}},
	{"insert-element", func(t *testing.T, db *DB, doc *Document) error {
		_, err := doc.InsertElement(keyOf(t, db, doc, "/site"), -1, "d")
		return err
	}},
	{"insert-text", func(t *testing.T, db *DB, doc *Document) error {
		_, err := doc.InsertText(keyOf(t, db, doc, "//a"), -1, "more")
		return err
	}},
	{"insert-attribute", func(t *testing.T, db *DB, doc *Document) error {
		_, err := doc.InsertAttribute(keyOf(t, db, doc, "//c"), "id", "9")
		return err
	}},
	{"update-text", func(t *testing.T, db *DB, doc *Document) error {
		return doc.UpdateText(keyOf(t, db, doc, "//b/text()"), "TWO")
	}},
	{"delete-subtree", func(t *testing.T, db *DB, doc *Document) error {
		return doc.DeleteSubtree(keyOf(t, db, doc, "//c"))
	}},
	// "flush" isolates an explicit mid-session Flush (rather than the one
	// inside Close) as the crashing commit.
	{"flush", func(t *testing.T, db *DB, doc *Document) error {
		if _, err := doc.InsertElement(keyOf(t, db, doc, "/site"), -1, "f"); err != nil {
			return err
		}
		return db.engine.Store().Flush()
	}},
}

// crashFingerprint captures the full observable state of a store: every
// document serialized back to XML, in document-name order.
func crashFingerprint(db *DB) (string, error) {
	var sb strings.Builder
	names := db.Documents()
	sort.Strings(names) // Documents() order is unspecified
	for _, name := range names {
		doc, err := db.Document(name)
		if err != nil {
			return "", err
		}
		var buf bytes.Buffer
		if err := doc.WriteXML("a", &buf); err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%s: %s\n", name, buf.Bytes())
	}
	return sb.String(), nil
}

// crashBaseSnapshot builds the clean pre-operation store and returns its
// surviving bytes plus its fingerprint.
func crashBaseSnapshot(t *testing.T) (snap []byte, preFP string) {
	t.Helper()
	b := faultfs.New()
	db, err := Open(Options{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXMLString("doc", crashBaseXML); err != nil {
		t.Fatal(err)
	}
	preFP, err = crashFingerprint(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Snapshot(), preFP
}

// TestVerifyFile checks the page-layer sweep on a real file: clean after
// close, and still able to report a damaged page — here the catalog root
// itself, which makes the store unopenable as a database — by page id.
func TestVerifyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.vam")
	db, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXMLString("doc", crashBaseXML); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	checked, corrupt, err := VerifyFile(path)
	if err != nil || len(corrupt) != 0 || checked == 0 {
		t.Fatalf("clean store: checked=%d corrupt=%v err=%v", checked, corrupt, err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 2*8192+100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(Options{Path: path}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("open of damaged store: err=%v, want ErrChecksum", err)
	}
	_, corrupt, err = VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 1 || corrupt[0] != 2 {
		t.Fatalf("corrupt pages = %v, want [2]", corrupt)
	}
}

func TestCrashMatrix(t *testing.T) {
	baseSnap, preFP := crashBaseSnapshot(t)

	for _, op := range crashOps {
		op := op
		t.Run(op.name, func(t *testing.T) {
			// Clean run: establish the post-operation fingerprint and count
			// the backend writes and syncs the operation's commits perform.
			clean := faultfs.FromBytes(baseSnap)
			db, err := Open(Options{Backend: clean})
			if err != nil {
				t.Fatal(err)
			}
			doc, err := db.Document("doc")
			if err != nil {
				t.Fatal(err)
			}
			w0, s0 := clean.Writes(), clean.Syncs()
			if err := op.apply(t, db, doc); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			nWrites, nSyncs := clean.Writes()-w0, clean.Syncs()-s0
			if nWrites == 0 || nSyncs == 0 {
				t.Fatalf("op performed no backend I/O (writes=%d syncs=%d)", nWrites, nSyncs)
			}
			post, err := Open(Options{Backend: faultfs.FromBytes(clean.Snapshot())})
			if err != nil {
				t.Fatal(err)
			}
			postFP, err := crashFingerprint(post)
			if err != nil {
				t.Fatal(err)
			}
			post.Close()
			if postFP == preFP {
				t.Fatal("operation did not change the observable state; matrix would prove nothing")
			}

			sawPre, sawPost := false, false
			run := func(name string, arm func(b *faultfs.Backend)) {
				b := faultfs.FromBytes(baseSnap)
				db, err := Open(Options{Backend: b})
				if err != nil {
					t.Fatalf("%s: open: %v", name, err)
				}
				doc, err := db.Document("doc")
				if err != nil {
					t.Fatalf("%s: doc: %v", name, err)
				}
				arm(b)
				if err := op.apply(t, db, doc); err != nil && !b.Dead() {
					t.Fatalf("%s: op failed without an injected fault: %v", name, err)
				}
				db.Close() // flush crashes here for most ops; errors expected

				db2, err := Open(Options{Backend: faultfs.FromBytes(b.Snapshot())})
				if err != nil {
					// A typed storage error is an acceptable (diagnosable)
					// outcome; anything untyped is not.
					if errors.Is(err, ErrTornMeta) || errors.Is(err, ErrChecksum) {
						return
					}
					t.Fatalf("%s: reopen failed with untyped error: %v", name, err)
				}
				defer db2.Close()
				fp, err := crashFingerprint(db2)
				if err != nil {
					if errors.Is(err, ErrChecksum) || errors.Is(err, ErrTornMeta) {
						return
					}
					t.Fatalf("%s: fingerprint failed with untyped error: %v", name, err)
				}
				switch fp {
				case preFP:
					sawPre = true
				case postFP:
					sawPost = true
				default:
					t.Fatalf("%s: SILENT CORRUPTION — store opened cleanly but matches neither state:\n got: %s\n pre: %s\npost: %s",
						name, fp, preFP, postFP)
				}
			}

			for k := 1; k <= nWrites; k++ {
				for _, tear := range []int{0, 4096, 8192} {
					k, tear := k, tear
					run(fmt.Sprintf("write%d/tear%d", k, tear), func(b *faultfs.Backend) {
						b.FailWrite(k, tear)
					})
				}
			}
			for k := 1; k <= nSyncs; k++ {
				k := k
				run(fmt.Sprintf("sync%d", k), func(b *faultfs.Backend) {
					b.FailSync(k)
				})
			}
			if !sawPre || !sawPost {
				t.Errorf("matrix did not observe both recovery outcomes: pre=%v post=%v", sawPre, sawPost)
			}
		})
	}
}
