package vamana

import (
	"context"
	"errors"
	"sync/atomic"

	"vamana/internal/core"
	"vamana/internal/mass"
)

// Snapshots and transactions.
//
// A Snapshot is a cheap, refcounted handle on the database's latest
// committed state: every read through it — queries, node fetches, XML
// export — observes exactly that state, however many writers commit
// underneath. DB.Update runs a function inside a write transaction whose
// mutations become visible atomically on commit, made durable with one
// group-committed journal flush shared by concurrent committers.
//
// DB.Query and friends are auto-snapshot wrappers: when a recent commit
// installed a shared snapshot they serve from it (so a long result stream
// never observes a concurrent writer mid-flight), and otherwise they read
// the live store directly, which is equivalent because each individual
// read path is internally consistent.

var (
	// ErrDocumentBusy reports a Drop refused because open snapshots or
	// in-flight result streams could still read the document.
	ErrDocumentBusy = mass.ErrDocumentBusy
	// ErrReadOnlySnapshot reports a mutation attempted through a
	// snapshot-bound handle.
	ErrReadOnlySnapshot = mass.ErrReadOnlySnapshot
	// ErrTxnDone reports a use of a transaction that already committed or
	// rolled back.
	ErrTxnDone = mass.ErrTxnDone
	// ErrSnapshotClosed reports a query started on a closed Snapshot.
	ErrSnapshotClosed = errors.New("vamana: snapshot is closed")
)

// SnapshotUsage aggregates the work served from one snapshot: queries
// finished, result nodes delivered, and the storage they consumed.
type SnapshotUsage = core.SnapshotUsage

// Snapshot is a consistent read-only view of the database at one
// committed version. It is safe for concurrent use; reads through it
// cost the same as reads on the DB. Close releases it — result streams
// still draining keep the underlying version pinned until they finish,
// so Close never invalidates an in-flight iterator.
type Snapshot struct {
	db     *DB
	cs     *core.Snapshot
	closed atomic.Bool
}

// Snapshot pins the latest committed state and returns a handle reading
// exclusively from it. The snapshot must be Closed; until then, pages it
// can still see are retained (copy-on-write) and Drop of any document
// fails with ErrDocumentBusy.
func (db *DB) Snapshot() (*Snapshot, error) {
	cs, err := db.engine.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{db: db, cs: cs}, nil
}

// Epoch reports the committed version the snapshot pinned. Epochs
// increase with every commit, so two snapshots compare by recency.
func (sn *Snapshot) Epoch() uint64 { return sn.cs.Epoch() }

// Usage reports the cumulative work served from this snapshot.
func (sn *Snapshot) Usage() SnapshotUsage { return sn.cs.Usage() }

// Documents lists the document names in the snapshot, sorted.
func (sn *Snapshot) Documents() []string { return sn.cs.Store().Documents() }

// Document returns a handle for name bound to this snapshot: all reads
// through it observe the pinned version, and mutations fail with
// ErrReadOnlySnapshot. The error for an unknown name satisfies
// errors.Is(err, ErrNoSuchDocument).
func (sn *Snapshot) Document(name string) (*Document, error) {
	if sn.closed.Load() {
		return nil, ErrSnapshotClosed
	}
	id, ok := sn.cs.Store().DocID(name)
	if !ok {
		return nil, wrapNoDoc(mass.ErrNoDoc, name)
	}
	return &Document{db: sn.db, id: id, name: name, snap: sn}, nil
}

// Query is DB.Query against the snapshot's pinned version.
func (sn *Snapshot) Query(doc *Document, expr string) (*Results, error) {
	return sn.QueryContext(context.Background(), doc, expr)
}

// QueryContext is DB.QueryContext against the snapshot's pinned version.
// Plans compile against the snapshot's frozen statistics and stay cached
// for the snapshot's whole life — a snapshot keeps serving cached plans
// however hard the live store is updated underneath.
func (sn *Snapshot) QueryContext(ctx context.Context, doc *Document, expr string, opts ...QueryOption) (*Results, error) {
	if sn.closed.Load() {
		return nil, ErrSnapshotClosed
	}
	cfg := sn.db.config(opts)
	return sn.queryContext(ctx, doc, expr, cfg)
}

// queryContext runs one query on the snapshot, rebinding the result
// stream's document handle to the snapshot so StringValue and friends
// read the same pinned version the results came from.
func (sn *Snapshot) queryContext(ctx context.Context, doc *Document, expr string, cfg queryConfig) (*Results, error) {
	it, err := sn.cs.QueryContext(ctx, doc.id, expr, cfg.limits)
	if err != nil {
		return nil, err
	}
	rdoc := doc
	if rdoc.snap != sn {
		c := *doc
		c.snap = sn
		rdoc = &c
	}
	return &Results{doc: rdoc, it: it}, nil
}

// Close releases the snapshot. Idempotent; safe while result streams
// opened from it are still draining (the pinned version is released when
// the last of them finishes).
func (sn *Snapshot) Close() error {
	if sn.closed.CompareAndSwap(false, true) {
		return sn.cs.Close()
	}
	return nil
}

// acquireShared returns the installed shared snapshot with a reference
// held, or nil when there is none, it is stale, or it lost a race with
// release. Callers must Unref after starting their query (the iterator
// holds its own pin from then on).
func (db *DB) acquireShared() *core.Snapshot {
	sn := db.shared.Load()
	if sn == nil {
		return nil
	}
	if sn.Gen() < db.engine.Store().CommitGen() {
		// Stale — a legacy per-op mutator committed past it. (Writes
		// buffered inside an open Update do not advance CommitGen, so the
		// snapshot keeps serving the latest committed state throughout a
		// transaction, and commits install their replacement before the
		// generation moves.) Uninstall so its pinned pages reclaim;
		// queries fall back to direct reads until the next Update
		// installs a fresh one.
		if db.shared.CompareAndSwap(sn, nil) {
			sn.Close()
		}
		return nil
	}
	if !sn.TryRef() {
		return nil
	}
	return sn
}

// installShared is the commit hook that publishes a fresh shared
// snapshot for the auto-snapshot read path, releasing the previous one.
// It runs inside Update's commit with the store's writer lock held, so
// it only swaps pointers and drops a reference.
func (db *DB) installShared(sn *core.Snapshot) {
	if old := db.shared.Swap(sn); old != nil {
		old.Close()
	}
}

// dropShared uninstalls the shared snapshot (before Drop and Close, so
// its pins do not hold pages or block the operation indefinitely).
func (db *DB) dropShared() {
	if old := db.shared.Swap(nil); old != nil {
		old.Close()
	}
}

// refreshShared ensures a fresh shared snapshot is installed, so every
// auto-snapshot read path — queries and direct Document reads alike —
// has a committed version to serve from. Update calls it before running
// its function: otherwise reads during the first-ever transaction (no
// commit has installed a snapshot yet) would fall back to the live
// trees and observe the transaction's buffered writes.
func (db *DB) refreshShared() {
	if sn := db.acquireShared(); sn != nil {
		sn.Unref()
		return
	}
	sn, err := db.engine.Snapshot()
	if err != nil {
		return
	}
	if !db.shared.CompareAndSwap(nil, sn) {
		// Lost an install race; the winner is at least as fresh.
		sn.Close()
	}
}

// Txn is an open write transaction, passed to the function run by
// DB.Update. All mutations made through it become visible atomically
// when the function returns nil; none survive when it returns an error.
// A Txn is bound to its DB.Update call: it must not be used after the
// function returns, and it is not safe for concurrent use.
type Txn struct {
	db *DB
	u  *mass.Update
}

// Update runs fn inside a write transaction. Mutations made through the
// Txn are buffered (invisible to queries and snapshots) until fn returns
// nil, then committed as one atomic version and made durable with one
// group-committed journal flush — concurrent Update calls coalesce their
// syncs instead of paying one fsync each. When fn returns an error (or
// panics) every buffered mutation is rolled back and the store is
// exactly as before.
//
// Transactions serialize: one writer runs at a time, while readers —
// queries, snapshots, result streams — proceed unblocked throughout.
// The commit installs a fresh shared read snapshot atomically, so
// DB.Query observes the new version immediately and never falls back to
// contended live-store reads in between.
func (db *DB) Update(fn func(*Txn) error) error {
	// Make sure direct reads have a committed snapshot to serve from
	// while the transaction is open (see refreshShared).
	db.refreshShared()
	// The installed shared snapshot seeds the replacement's node caches
	// when it is still the directly preceding committed state (checked
	// under the writer lock at commit; a racing uninstall at worst costs
	// the warm start, never correctness).
	prev := db.shared.Load()
	_, err := db.engine.Update(func(u *mass.Update) error {
		return fn(&Txn{db: db, u: u})
	}, prev, db.installShared)
	return err
}

// Document returns the handle for a loaded document, for use with the
// transaction's mutation methods.
func (t *Txn) Document(name string) (*Document, error) { return t.db.Document(name) }

// InsertElement inserts a new element named name as a content child of
// the node at parentKey in d, at position pos among existing content
// children (negative or past-the-end appends). It returns the new
// node's FLEX key. Indexes and statistics update within the
// transaction; other readers see nothing until commit.
func (t *Txn) InsertElement(d *Document, parentKey string, pos int, name string) (string, error) {
	k, err := t.u.InsertElement(d.id, flexKey(parentKey), pos, name)
	return string(k), err
}

// InsertText inserts a new text node under parentKey (see InsertElement).
func (t *Txn) InsertText(d *Document, parentKey string, pos int, value string) (string, error) {
	k, err := t.u.InsertText(d.id, flexKey(parentKey), pos, value)
	return string(k), err
}

// InsertAttribute adds an attribute to the element at ownerKey in d.
func (t *Txn) InsertAttribute(d *Document, ownerKey, name, value string) (string, error) {
	k, err := t.u.InsertAttribute(d.id, flexKey(ownerKey), name, value)
	return string(k), err
}

// UpdateText replaces the value of a text or attribute node, keeping the
// value index (TC statistics) exact.
func (t *Txn) UpdateText(d *Document, key, newValue string) error {
	return t.u.UpdateText(d.id, flexKey(key), newValue)
}

// RenameElement changes an element's name, maintaining the name index.
func (t *Txn) RenameElement(d *Document, key, newName string) error {
	return t.u.RenameElement(d.id, flexKey(key), newName)
}

// DeleteSubtree removes the node at key in d and its entire subtree.
func (t *Txn) DeleteSubtree(d *Document, key string) error {
	return t.u.DeleteSubtree(d.id, flexKey(key))
}
