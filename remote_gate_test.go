package vamana_test

// TestRemoteOverheadGate bounds the serving daemon's tax: the
// client-observed p95 latency of the cached paper query Q1 over real
// HTTP (vamanad's handler on a loopback listener) must stay within a
// fixed multiple of the in-process p95 of the same query on the same
// database. The multiple covers everything the daemon adds — admission
// bookkeeping, tenant resolution, NDJSON encoding, HTTP framing and a
// loopback round trip — and catches regressions anywhere in that stack.
//
// Methodology matches the repo's other perf gates: paired interleaved
// rounds (in-process and remote alternate within each round, so machine
// noise hits both sides equally), best-of-rounds p95 per side, several
// attempts so only a persistent regression fails. External test package:
// internal/serve imports vamana, so an in-package test would cycle.
//
// Skipped unless VAMANA_REMOTE_GATE is set — scripts/check.sh runs it.
// Gates jitter around ±7% on shared hardware; re-run a failing gate
// alone before calling it a regression.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"vamana"
	"vamana/internal/serve"
	"vamana/internal/xmark"
)

func TestRemoteOverheadGate(t *testing.T) {
	if os.Getenv("VAMANA_REMOTE_GATE") == "" {
		t.Skip("set VAMANA_REMOTE_GATE=1 to run the remote overhead gate")
	}
	const (
		q1              = "//person/address" // the paper's Q1
		queriesPerRound = 120
		rounds          = 3
		attempts        = 4
		maxMultiple     = 3.0
	)

	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("auction",
		xmark.GenerateString(xmark.Config{Factor: 0.02, Seed: 51}))
	if err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	remoteURL := ts.URL + "/v1/query?doc=auction&q=" + q1

	// Warm both paths: plan cache, probe memo, HTTP connection.
	drainInProcess := func() {
		res, err := db.QueryContext(context.Background(), doc, q1)
		if err != nil {
			t.Fatal(err)
		}
		for res.Next() {
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
	}
	drainRemote := func() {
		resp, err := client.Get(remoteURL)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("remote status = %d", resp.StatusCode)
		}
	}
	for i := 0; i < 5; i++ {
		drainInProcess()
		drainRemote()
	}

	p95 := func(lats []time.Duration) time.Duration {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*95/100]
	}
	// One paired round: alternate the two paths query by query so any
	// machine-noise burst lands on both sides.
	measureRound := func() (inProc, remote time.Duration) {
		in := make([]time.Duration, 0, queriesPerRound)
		rem := make([]time.Duration, 0, queriesPerRound)
		for i := 0; i < queriesPerRound; i++ {
			begin := time.Now()
			drainInProcess()
			in = append(in, time.Since(begin))
			begin = time.Now()
			drainRemote()
			rem = append(rem, time.Since(begin))
		}
		return p95(in), p95(rem)
	}

	var lastMsg string
	for attempt := 0; attempt < attempts; attempt++ {
		inBest, remBest := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			in, rem := measureRound()
			if in < inBest {
				inBest = in
			}
			if rem < remBest {
				remBest = rem
			}
		}
		multiple := float64(remBest) / float64(inBest)
		lastMsg = fmt.Sprintf("cached Q1 p95 in-process=%v remote=%v multiple=%.2f (bound %.1f)",
			inBest, remBest, multiple, maxMultiple)
		t.Log(lastMsg)
		if multiple <= maxMultiple {
			return
		}
	}
	t.Fatalf("remote serving overhead exceeded bound after %d attempts: %s", attempts, lastMsg)
}
