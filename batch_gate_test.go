package vamana

import (
	"math"
	"os"
	"testing"

	"vamana/internal/xmark"
)

// batchGateExprs are scan-dominated drains: their cost is the index
// range scan plus per-tuple delivery, which is exactly what batched
// pulls amortize. The join/reverse-axis workload queries (Q2, Q4) spend
// their time in structural predicates instead and are covered by the
// serving sweep, not this gate.
var batchGateExprs = []string{
	"//name",
	"//person",
	"//person/address",
	"/site/people/person",
}

// TestBatchThroughputGate asserts that batch-at-a-time execution keeps
// paying for itself: the default-batch engine must drain scan-heavy
// shapes at least 1.5x faster than the same engine pinned to
// ExecBatchSize 1 (tuple-at-a-time pull cadence). Both sides run the
// identical operator tree — the ratio isolates precisely the per-pull
// amortization this engine's vectorized executor exists to provide, so
// a regression here means someone re-introduced per-tuple overhead on
// the hot path.
//
// Methodology matches the trace/governance gates: single-goroutine
// loops, interleaved rounds, best-of-rounds ratio (minimum over rounds
// converges to true cost on noisy shared hardware), several attempts so
// only a persistent regression fails. Skipped unless VAMANA_BATCH_GATE
// is set — scripts/check.sh runs it.
func TestBatchThroughputGate(t *testing.T) {
	if os.Getenv("VAMANA_BATCH_GATE") == "" {
		t.Skip("set VAMANA_BATCH_GATE=1 to run the batch-throughput gate")
	}
	src := xmark.GenerateString(xmark.Config{Factor: xmark.FactorForBytes(1 << 20), Seed: 51})
	open := func(opts Options) (*DB, *Document) {
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		doc, err := db.LoadXMLString("auction", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range batchGateExprs {
			drainCount(t, db, doc, expr)
		}
		return db, doc
	}
	tupleDB, tupleDoc := open(Options{ExecBatchSize: 1})
	batchedDB, batchedDoc := open(Options{})

	loop := func(db *DB, doc *Document) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				expr := batchGateExprs[i%len(batchGateExprs)]
				res, err := db.Query(doc, expr)
				if err != nil {
					b.Fatal(err)
				}
				for res.Next() {
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		}
	}
	measure := func(db *DB, doc *Document) float64 {
		return float64(testing.Benchmark(loop(db, doc)).NsPerOp())
	}

	measure(batchedDB, batchedDoc) // warm-up round, discarded
	const (
		rounds   = 7
		attempts = 3
		floor    = 1.5
	)
	var speedup float64
	for attempt := 1; attempt <= attempts; attempt++ {
		tupleBest, batchedBest := math.MaxFloat64, math.MaxFloat64
		var tuples, batches []float64
		for i := 0; i < rounds; i++ {
			var tu, ba float64
			if i%2 == 0 {
				tu, ba = measure(tupleDB, tupleDoc), measure(batchedDB, batchedDoc)
			} else {
				ba, tu = measure(batchedDB, batchedDoc), measure(tupleDB, tupleDoc)
			}
			tuples, batches = append(tuples, tu), append(batches, ba)
			tupleBest, batchedBest = min(tupleBest, tu), min(batchedBest, ba)
		}
		speedup = tupleBest / batchedBest
		t.Logf("attempt %d: scan-heavy drain ns/op tuple-at-a-time %v (best %.0f), batched %v (best %.0f), best-of-rounds speedup %.2fx",
			attempt, tuples, tupleBest, batches, batchedBest, speedup)
		if speedup >= floor {
			return
		}
	}
	t.Errorf("batched execution is only %.2fx tuple-at-a-time on scan-heavy shapes; the gate floor is %.1fx", speedup, floor)
}
