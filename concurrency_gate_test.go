package vamana

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

// mixedGateExprs is the paper workload Q1-Q5 — the same shapes the
// figure benchmarks and the serving sweep use.
var mixedGateExprs = []string{
	"//person/address",                        // Q1
	"//person[profile/age]/name",              // Q2
	"/site/regions/africa/item/description",   // Q3
	"//people/person[address and phone]/name", // Q4
	"//open_auction/bidder/increase",          // Q5
}

// TestMixedReadWriteGate asserts the tentpole's concurrency claim: a
// reader's tail latency must not degrade while a writer commits
// transactions concurrently. Readers serve the paper workload through
// DB.Query (which rides the shared snapshot when one is installed and
// the live store otherwise); the writer commits DB.Update transactions
// on a separate scratch document at a fixed pace, so the gate isolates
// concurrency interference — lock waits, MVCC copy-on-write overhead,
// snapshot install and reclamation — from the intentional
// plan-recompile that mutating a queried document causes (statistics
// freshness is a feature, not interference).
//
// The writer is paced (writerPace between commits) rather than
// spinning: an unthrottled in-memory commit loop is pure CPU, and on a
// small machine — CI runs this on a single core, under -race — it
// simply timeshares the core away from the reader, measuring the
// scheduler instead of the engine. The pace is chosen so that the
// probability of a query overlapping a commit burst (about (query
// duration + commit duration) / pace) sits below the 5% tail that p95
// inspects: a commit costs ~2ms of CPU under -race, queries run ~4ms,
// so at 150ms pace roughly 4% of queries share their core slice with a
// commit and the p95 isolates what the snapshot design actually
// promises — readers do not *wait* on writers. A regression that makes
// readers block behind commits or serializes them against the live
// store shifts the whole latency distribution and still trips the
// bound. Every mixed round spans several commits, each installing (and
// reclaiming) a shared snapshot under the reader's feet.
//
// Methodology matches the other gates: interleaved solo/mixed rounds,
// best-of-rounds p95 (minimum over rounds converges to true cost on
// noisy shared hardware), several attempts so only a persistent
// regression fails. The bound is 1.10x — within the scheduler noise of
// an uncontended run, per the gate-noise calibration in EXPERIMENTS.md.
// Skipped unless VAMANA_MIXED_GATE is set — scripts/check.sh runs it
// under -race.
func TestMixedReadWriteGate(t *testing.T) {
	if os.Getenv("VAMANA_MIXED_GATE") == "" {
		t.Skip("set VAMANA_MIXED_GATE=1 to run the mixed read/write gate")
	}
	const (
		queriesPerRound = 250
		rounds          = 3
		attempts        = 4
		maxRatio        = 1.10
		writerPace      = 150 * time.Millisecond // ~7 committed txns/s
	)

	db := openDB(t)
	doc := loadAuction(t, db, 0.02)
	scratch, err := db.LoadXMLString("scratch", `<pad><slot/></pad>`)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every plan (and the probe memo) before measuring.
	for _, expr := range mixedGateExprs {
		res, err := db.Query(doc, expr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.Keys(); err != nil {
			t.Fatal(err)
		}
	}

	runReader := func() []time.Duration {
		lats := make([]time.Duration, 0, queriesPerRound)
		for i := 0; i < queriesPerRound; i++ {
			expr := mixedGateExprs[i%len(mixedGateExprs)]
			begin := time.Now()
			res, err := db.Query(doc, expr)
			if err != nil {
				t.Fatal(err)
			}
			for res.Next() {
			}
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			lats = append(lats, time.Since(begin))
		}
		return lats
	}
	p95 := func(lats []time.Duration) time.Duration {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*95/100]
	}

	measure := func(withWriter bool) time.Duration {
		if !withWriter {
			return p95(runReader())
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(writerPace)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				// One committed transaction per lap: insert and delete,
				// so the scratch document never grows but every lap
				// publishes a new version and installs a fresh shared
				// snapshot.
				if err := db.Update(func(tx *Txn) error {
					k, err := tx.InsertElement(scratch, "a", -1, "w")
					if err != nil {
						return err
					}
					return tx.DeleteSubtree(scratch, k)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		lats := runReader()
		close(stop)
		wg.Wait()
		return p95(lats)
	}

	var lastMsg string
	for attempt := 0; attempt < attempts; attempt++ {
		solo, mixed := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ {
			if s := measure(false); s < solo {
				solo = s
			}
			if m := measure(true); m < mixed {
				mixed = m
			}
		}
		ratio := float64(mixed) / float64(solo)
		lastMsg = fmt.Sprintf("reader p95 solo=%v mixed=%v ratio=%.3f (bound %.2f)",
			solo, mixed, ratio, maxRatio)
		t.Log(lastMsg)
		if ratio <= maxRatio {
			return
		}
	}
	t.Fatalf("reader tail latency degraded under concurrent writer after %d attempts: %s",
		attempts, lastMsg)
}
