package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vamana"
)

// obsFlags are the observability flags shared by every subcommand that
// opens a database: CPU/heap profiling, a metrics HTTP endpoint, the
// slow-query log and trace sampling.
type obsFlags struct {
	cpuProfile  string
	memProfile  string
	metricsAddr string
	slow        time.Duration
	traceEvery  int
	flight      int
	traceOut    string

	cpuFile *os.File
	db      *vamana.DB
}

func (o *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve the metrics and /debug/vamana endpoints on this address (e.g. localhost:9090)")
	fs.DurationVar(&o.slow, "slow", 0, "log queries at or above this duration to stderr (0 disables)")
	fs.IntVar(&o.traceEvery, "trace", 0, "print an execution trace (with span tree) for 1 in N queries (0 disables)")
	fs.IntVar(&o.flight, "flight", 0, "keep the last N query traces in the flight recorder (0 disables)")
	fs.StringVar(&o.traceOut, "trace-out", "", "write recorded traces as Chrome trace-event JSON to this file on exit")
}

// apply threads the slow-query and trace settings into database options.
func (o *obsFlags) apply(opts vamana.Options) vamana.Options {
	if o.slow > 0 {
		opts.SlowQueryThreshold = o.slow
		opts.SlowQueryLog = os.Stderr
	}
	if o.traceEvery > 0 {
		opts.TraceEvery = o.traceEvery
		opts.TraceSink = func(tc *vamana.TraceContext) {
			if tc.Root != nil {
				_ = tc.Export().WriteTree(os.Stderr)
			} else {
				fmt.Fprintf(os.Stderr, "trace: %s doc=%d cached=%v compile=%v total=%v results=%d\n",
					tc.Expr, tc.Doc, tc.CacheHit, tc.Compile, tc.Total, tc.Results)
			}
		}
	}
	if o.flight > 0 {
		opts.FlightRecorderSize = o.flight
	}
	if o.traceOut != "" && opts.FlightRecorderSize == 0 {
		// -trace-out needs recorded traces to export; a small flight
		// recorder captures every query the command runs.
		opts.FlightRecorderSize = 64
	}
	return opts
}

// writeTraceOut exports the flight recorder as a Chrome trace file
// (no-op without -trace-out). Load the file in https://ui.perfetto.dev
// or chrome://tracing.
func (o *obsFlags) writeTraceOut() {
	if o.traceOut == "" || o.db == nil {
		return
	}
	f, err := os.Create(o.traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vamana:", err)
		return
	}
	defer f.Close()
	traces := o.db.RecentTraces()
	if err := vamana.WriteChromeTrace(f, traces); err != nil {
		fmt.Fprintln(os.Stderr, "vamana:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %d trace(s) to %s\n", len(traces), o.traceOut)
}

// start begins CPU profiling (if requested). Call the returned stop
// function before exit; it also writes the heap profile.
func (o *obsFlags) start() (func(), error) {
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		o.cpuFile = f
	}
	return func() {
		if o.cpuFile != nil {
			pprof.StopCPUProfile()
			o.cpuFile.Close()
		}
		if o.memProfile != "" {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vamana:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vamana:", err)
			}
		}
	}, nil
}

// serveMetrics exposes db's metric and introspection endpoints for the
// lifetime of the command (no-op without -metrics-addr) and remembers
// the database for -trace-out export.
func (o *obsFlags) serveMetrics(db *vamana.DB) {
	o.db = db
	if o.metricsAddr == "" {
		return
	}
	go func() {
		mux := http.NewServeMux()
		mux.Handle("/metrics", db.MetricsHandler())
		// One mount covers both /debug/vamana/* and the stdlib pprof
		// handlers DebugHandler mounts at /debug/pprof/*.
		mux.Handle("/debug/", db.DebugHandler("/debug/vamana"))
		if err := http.ListenAndServe(o.metricsAddr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "vamana: metrics endpoint:", err)
		}
	}()
}
