// Command vamana is the VAMANA XPath engine's command-line interface.
//
//	vamana load  -db site.vam -name auction auction.xml
//	vamana query -db site.vam -doc auction [-opt] '//person/address'
//	vamana query -xml auction.xml '//person/address'
//	vamana explain -db site.vam -doc auction '//person/address'
//	vamana stats -db site.vam -doc auction [-name person] [-text 'Yung Flach']
//	vamana docs  -db site.vam
//	vamana verify -db site.vam
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"vamana"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "load":
		err = cmdLoad(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "docs":
		err = cmdDocs(os.Args[2:])
	case "traces":
		err = cmdTraces(os.Args[2:])
	case "requests":
		err = cmdRequests(os.Args[2:])
	case "cost":
		err = cmdCost(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "vamana: unknown command %q\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vamana:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  vamana load    -db FILE -name NAME XMLFILE   index a document into a database
  vamana query   (-db FILE -doc NAME | -xml XMLFILE) [-opt] [-values] [-limit N]
                 [-timeout DUR] [-max-results N] [-max-pages N] [-max-records N]
                 [-slow DUR] [-trace N] [-flight N] [-trace-out F.json]
                 [-cpuprofile F] [-memprofile F] [-metrics-addr A] [-hold] XPATH
  vamana explain (-db FILE -doc NAME | -xml XMLFILE) [-default] [-analyze]
                 [-cpuprofile F] [-memprofile F] [-metrics-addr A] XPATH
  vamana stats   -db FILE -doc NAME [-name ELEM] [-text VALUE]
  vamana docs    -db FILE
  vamana traces  -addr HOST:PORT [-n N] [-chrome F.json]
                                               dump a serving process's flight recorder
  vamana requests -addr HOST:PORT [-slow] [-json]
                                               dump a vamanad's recent/slow request rings
  vamana cost    -addr HOST:PORT [-json]       dump a serving process's cost-model
                                               observatory (q-error profiles)
  vamana verify  -db FILE                      checksum every page of a database
`)
	os.Exit(2)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file")
	name := fs.String("name", "", "document name (defaults to the file path)")
	fs.Parse(args)
	if *dbPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("load needs -db and one XML file")
	}
	xmlPath := fs.Arg(0)
	if *name == "" {
		*name = xmlPath
	}
	db, err := vamana.Open(vamana.Options{Path: *dbPath})
	if err != nil {
		return err
	}
	defer db.Close()
	f, err := os.Open(xmlPath)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := db.LoadXML(*name, f)
	if err != nil {
		return err
	}
	st, err := doc.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("indexed %q: %d nodes, %d elements, %d text nodes\n", *name, st.Nodes, st.Elements, st.Texts)
	return nil
}

// openDoc resolves the (-db,-doc) or (-xml) source into a document. A
// non-nil obsFlags threads the slow-query/trace settings into the open
// options and starts the metrics endpoint.
func openDoc(dbPath, docName, xmlPath string, of *obsFlags) (*vamana.DB, *vamana.Document, error) {
	open := func(opts vamana.Options) (*vamana.DB, error) {
		if of != nil {
			opts = of.apply(opts)
		}
		db, err := vamana.Open(opts)
		if err == nil && of != nil {
			of.serveMetrics(db)
		}
		return db, err
	}
	switch {
	case xmlPath != "":
		db, err := open(vamana.Options{})
		if err != nil {
			return nil, nil, err
		}
		f, err := os.Open(xmlPath)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		defer f.Close()
		doc, err := db.LoadXML(xmlPath, f)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		return db, doc, nil
	case dbPath != "" && docName != "":
		db, err := open(vamana.Options{Path: dbPath})
		if err != nil {
			return nil, nil, err
		}
		doc, err := db.Document(docName)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		return db, doc, nil
	default:
		return nil, nil, fmt.Errorf("need either -xml FILE or -db FILE -doc NAME")
	}
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file")
	docName := fs.String("doc", "", "document name")
	xmlPath := fs.String("xml", "", "query an XML file directly (ephemeral in-memory index)")
	optimized := fs.Bool("opt", true, "run the cost-driven optimizer")
	values := fs.Bool("values", false, "print each result's string-value")
	limit := fs.Int("limit", 0, "stop after N results (0 = all)")
	timeout := fs.Duration("timeout", 0, "kill the query after this wall-clock time (0 = none)")
	maxResults := fs.Uint64("max-results", 0, "fail the query past N results (0 = unlimited)")
	maxPages := fs.Uint64("max-pages", 0, "fail the query past N index pages read (0 = unlimited)")
	maxRecords := fs.Uint64("max-records", 0, "fail the query past N records decoded (0 = unlimited)")
	hold := fs.Bool("hold", false, "after the query, keep serving -metrics-addr until interrupted")
	var of obsFlags
	of.register(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query needs exactly one XPath expression")
	}
	stop, err := of.start()
	if err != nil {
		return err
	}
	defer stop()
	db, doc, err := openDoc(*dbPath, *docName, *xmlPath, &of)
	if err != nil {
		return err
	}
	defer db.Close()

	// Ctrl-C cancels the running query through its context; the engine
	// stops mid-stream and reports vamana.ErrCanceled.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	opts := []vamana.QueryOption{
		vamana.WithTimeout(*timeout),
		vamana.WithMaxResults(*maxResults),
		vamana.WithMaxPagesRead(*maxPages),
		vamana.WithMaxDecodedRecords(*maxRecords),
	}

	var res *vamana.Results
	if *optimized {
		// The serving path: plan cache, latency histogram, slow-query log.
		res, err = db.QueryContext(ctx, doc, fs.Arg(0), opts...)
	} else {
		var q *vamana.Query
		q, err = db.Compile(fs.Arg(0))
		if err != nil {
			return err
		}
		res, err = q.ExecuteContext(ctx, doc, opts...)
	}
	if err != nil {
		return err
	}
	n := 0
	for node, err := range res.All() {
		if err != nil {
			return err
		}
		if *values {
			sv, err := res.StringValue()
			if err != nil {
				return err
			}
			fmt.Printf("%s\t%s\t%s\t%s\n", node.Key, node.Kind, node.Name, sv)
		} else {
			fmt.Printf("%s\t%s\t%s\n", node.Key, node.Kind, node.Name)
		}
		n++
		if *limit > 0 && n >= *limit {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "%d result(s)\n", n)
	of.writeTraceOut()
	if *hold && of.metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "serving %s until interrupt\n", of.metricsAddr)
		<-ctx.Done()
	}
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file")
	docName := fs.String("doc", "", "document name")
	xmlPath := fs.String("xml", "", "explain against an XML file directly")
	deflt := fs.Bool("default", false, "show the default (unoptimized) plan instead")
	analyze := fs.Bool("analyze", false, "execute the query and include actual per-operator tuple counts")
	var of obsFlags
	of.register(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("explain needs exactly one XPath expression")
	}
	stop, err := of.start()
	if err != nil {
		return err
	}
	defer stop()
	db, doc, err := openDoc(*dbPath, *docName, *xmlPath, &of)
	if err != nil {
		return err
	}
	defer db.Close()

	var q *vamana.Query
	if *deflt {
		q, err = db.Compile(fs.Arg(0))
	} else {
		q, err = db.CompileOptimized(doc, fs.Arg(0))
	}
	if err != nil {
		return err
	}
	var out string
	if *analyze {
		out, err = q.ExplainAnalyze(doc)
	} else {
		out, err = q.Explain(doc)
	}
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file")
	docName := fs.String("doc", "", "document name")
	xmlPath := fs.String("xml", "", "stat an XML file directly")
	elem := fs.String("name", "", "count elements with this name (COUNT probe)")
	text := fs.String("text", "", "count text nodes with this value (TC probe)")
	fs.Parse(args)
	db, doc, err := openDoc(*dbPath, *docName, *xmlPath, nil)
	if err != nil {
		return err
	}
	defer db.Close()

	st, err := doc.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("document %q: %d nodes, %d elements, %d text nodes\n", doc.Name(), st.Nodes, st.Elements, st.Texts)
	if *elem != "" {
		n, err := doc.CountName(*elem)
		if err != nil {
			return err
		}
		fmt.Printf("COUNT(%s) = %d\n", *elem, n)
	}
	if *text != "" {
		n, err := doc.TextCount(*text)
		if err != nil {
			return err
		}
		fmt.Printf("TC(%q) = %d\n", *text, n)
	}
	return nil
}

func cmdDocs(args []string) error {
	fs := flag.NewFlagSet("docs", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("docs needs -db")
	}
	db, err := vamana.Open(vamana.Options{Path: *dbPath})
	if err != nil {
		return err
	}
	defer db.Close()
	for _, name := range db.Documents() {
		fmt.Println(name)
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file")
	fs.Parse(args)
	if *dbPath == "" {
		return fmt.Errorf("verify needs -db")
	}
	// VerifyFile sweeps at the page layer, below the document catalog, so
	// a store too damaged to open as a database still gets its corrupt
	// page ids reported (only torn page-layer metadata is fatal).
	checked, corrupt, err := vamana.VerifyFile(*dbPath)
	if err != nil {
		return err
	}
	if len(corrupt) > 0 {
		for _, id := range corrupt {
			fmt.Printf("page %d: checksum mismatch\n", id)
		}
		return fmt.Errorf("%d of %d page(s) corrupt", len(corrupt), checked)
	}
	fmt.Printf("%d page(s) verified, no corruption\n", checked)
	return nil
}
