package main

// The requests subcommand: dump a vamanad's recent and slow request
// rings from its /debug/vamana/requests endpoint.
//
//	vamana requests -addr localhost:8372         recent + slow requests
//	vamana requests -addr localhost:8372 -slow   slow ring only

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"
)

// requestLine mirrors serve.RequestRecord's JSON shape (the CLI stays
// decoupled from the internal package).
type requestLine struct {
	Time      time.Time `json:"time"`
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	Doc       string    `json:"doc"`
	Expr      string    `json:"expr"`
	Outcome   string    `json:"outcome"`
	Reason    string    `json:"reason"`
	Status    int       `json:"status"`
	QueueWait int64     `json:"queue_wait_ns"`
	TTFB      int64     `json:"ttfb_ns"`
	Total     int64     `json:"total_ns"`
	Results   uint64    `json:"results"`
	Bytes     uint64    `json:"bytes"`
	TraceID   uint64    `json:"trace_id"`
}

func cmdRequests(args []string) error {
	fs := flag.NewFlagSet("requests", flag.ExitOnError)
	addr := fs.String("addr", "", "the vamanad address (e.g. localhost:8372)")
	slowOnly := fs.Bool("slow", false, "print only the slow-request ring")
	asJSON := fs.Bool("json", false, "print the raw JSON payload")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("requests needs -addr")
	}

	u := url.URL{Scheme: "http", Host: *addr, Path: "/debug/vamana/requests"}
	resp, err := http.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("requests: %s: %s", resp.Status, body)
	}
	if *asJSON {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	var payload struct {
		Recent []requestLine `json:"recent"`
		Slow   []requestLine `json:"slow"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return err
	}
	if !*slowOnly {
		printRequests("recent", payload.Recent)
	}
	printRequests("slow", payload.Slow)
	return nil
}

func printRequests(title string, lines []requestLine) {
	fmt.Printf("%s (%d):\n", title, len(lines))
	for _, l := range lines {
		extra := ""
		if l.Reason != "" {
			extra = " reason=" + l.Reason
		}
		if l.TraceID != 0 {
			extra += fmt.Sprintf(" trace=%d", l.TraceID)
		}
		fmt.Printf("  %s %s tenant=%s doc=%s %q %s status=%d queue=%v ttfb=%v total=%v results=%d bytes=%d%s\n",
			l.Time.Format(time.RFC3339Nano), l.ID, l.Tenant, l.Doc, l.Expr, l.Outcome, l.Status,
			time.Duration(l.QueueWait), time.Duration(l.TTFB), time.Duration(l.Total),
			l.Results, l.Bytes, extra)
	}
}
