package main

// The cost subcommand: dump a serving process's cost-model observatory
// over its -metrics-addr introspection endpoint.
//
//	vamana cost -addr localhost:9090        aligned q-error table
//	vamana cost -addr localhost:9090 -json  raw JSON profile

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
)

func cmdCost(args []string) error {
	fs := flag.NewFlagSet("cost", flag.ExitOnError)
	addr := fs.String("addr", "", "the serving process's -metrics-addr (e.g. localhost:9090)")
	asJSON := fs.Bool("json", false, "print the raw JSON profile instead of the table")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("cost needs -addr")
	}

	q := url.Values{}
	if !*asJSON {
		q.Set("format", "text")
	}
	u := url.URL{Scheme: "http", Host: *addr, Path: "/debug/vamana/cost", RawQuery: q.Encode()}

	resp, err := http.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cost: %s: %s", resp.Status, body)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
