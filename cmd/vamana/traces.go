package main

// The traces subcommand: dump a serving process's flight recorder over
// its -metrics-addr introspection endpoint.
//
//	vamana traces -addr localhost:9090              indented span trees
//	vamana traces -addr localhost:9090 -chrome f.json  Chrome trace file

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
)

func cmdTraces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	addr := fs.String("addr", "", "the serving process's -metrics-addr (e.g. localhost:9090)")
	n := fs.Int("n", 0, "fetch only the N most recent traces (0 = all)")
	chrome := fs.String("chrome", "", "write Chrome trace-event JSON to this file instead of printing trees")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("traces needs -addr")
	}

	q := url.Values{}
	if *n > 0 {
		q.Set("n", strconv.Itoa(*n))
	}
	var out io.Writer = os.Stdout
	if *chrome != "" {
		q.Set("format", "chrome")
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	} else {
		q.Set("format", "text")
	}
	u := url.URL{Scheme: "http", Host: *addr, Path: "/debug/vamana/traces", RawQuery: q.Encode()}

	resp, err := http.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("traces: %s: %s", resp.Status, body)
	}
	if _, err := io.Copy(out, resp.Body); err != nil {
		return err
	}
	if *chrome != "" {
		fmt.Fprintf(os.Stderr, "wrote %s — open it in https://ui.perfetto.dev\n", *chrome)
	}
	return nil
}
