package main

// Remote load-generator mode: drive a running vamanad over HTTP with
// thousands of concurrent connections and record client-observed
// latency percentiles plus admission-control outcomes.
//
//	vamanad -xmark 0.05 -addr :8372 -max-inflight 16 -queue-depth 64 &
//	vbench -remote http://localhost:8372 -remote-conns 1000 \
//	       -remote-duration 10s -remote-out BENCH_remote.json
//
// Every rejection is counted by its typed reason (the daemon's JSON
// envelope), so an overloaded run reports exactly how the excess was
// shed — and any request that neither completes nor is rejected within
// the client timeout is counted as hung, which a healthy daemon must
// keep at zero.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"vamana/internal/bench"
)

var (
	remoteURL = flag.String("remote", "",
		"load-generate against a running vamanad at this base URL instead of running the local sweep")
	remoteConns = flag.Int("remote-conns", 1000,
		"concurrent client connections in -remote mode")
	remoteDuration = flag.Duration("remote-duration", 10*time.Second,
		"how long to drive load in -remote mode")
	remoteDoc = flag.String("remote-doc", "auction",
		"document name to query in -remote mode")
	remoteQueries = flag.String("remote-queries", "Q1",
		"workload queries to drive in -remote mode (comma separated)")
	remoteTenants = flag.Int("remote-tenants", 4,
		"spread -remote load across this many tenant identities")
	remoteTimeout = flag.Duration("remote-timeout", 30*time.Second,
		"per-request client timeout in -remote mode (expiries count as hung)")
	remoteOut = flag.String("remote-out", "",
		"write the remote-mode JSON report here (default stdout)")
)

// remoteReport is the BENCH_remote.json schema.
type remoteReport struct {
	Benchmark string                  `json:"benchmark"`
	URL       string                  `json:"url"`
	Doc       string                  `json:"doc"`
	Conns     int                     `json:"conns"`
	Tenants   int                     `json:"tenants"`
	DurationS float64                 `json:"duration_s"`
	Queries   map[string]remoteSeries `json:"queries"`
	Outcomes  remoteOutcomes          `json:"outcomes"`
}

type remoteSeries struct {
	Requests int     `json:"requests"`
	P50us    float64 `json:"p50_us"`
	P95us    float64 `json:"p95_us"`
	P99us    float64 `json:"p99_us"`
	QPS      float64 `json:"qps"`
	// Admission queue wait as reported by the daemon per request
	// (X-Vamana-Queue-Wait) — separates "the server was slow" from "the
	// request sat in line".
	QueueWaitP50us float64 `json:"queue_wait_p50_us"`
	QueueWaitP95us float64 `json:"queue_wait_p95_us"`
	QueueWaitP99us float64 `json:"queue_wait_p99_us"`
	// WorstRequests are the request IDs (X-Vamana-Request) of the
	// slowest requests at or above the p99 latency, worst first — paste
	// one into `vamana requests`/`vamana traces` output to see where the
	// time went.
	WorstRequests []remoteWorst `json:"worst_requests,omitempty"`
}

// remoteWorst identifies one tail-latency outlier request.
type remoteWorst struct {
	ID        string  `json:"id"`
	LatencyUS float64 `json:"latency_us"`
	QueueUS   float64 `json:"queue_us"`
}

type remoteOutcomes struct {
	OK       int            `json:"ok"`
	Rejected map[string]int `json:"rejected"`
	Errors   int            `json:"errors"`
	Hung     int            `json:"hung"`
}

// remoteSample is one successful request's client-side observation.
type remoteSample struct {
	lat   time.Duration
	queue time.Duration // from X-Vamana-Queue-Wait; zero when absent
	id    string        // from X-Vamana-Request; empty when absent
}

// workerResult is one connection's tally, merged after the run.
type workerResult struct {
	samples  map[string][]remoteSample
	ok       int
	rejected map[string]int
	errors   int
	hung     int
}

func runRemote() {
	base := strings.TrimSuffix(*remoteURL, "/")
	var queries []bench.Query
	for _, id := range strings.Split(*remoteQueries, ",") {
		q, ok := bench.QueryByID(strings.TrimSpace(id))
		if !ok {
			fatal(fmt.Errorf("unknown workload query %q", id))
		}
		queries = append(queries, q)
	}

	// One transport sized to keep every connection persistent: the
	// concurrency level IS the connection count.
	tr := &http.Transport{
		MaxIdleConns:        *remoteConns + 8,
		MaxIdleConnsPerHost: *remoteConns + 8,
		MaxConnsPerHost:     0,
		IdleConnTimeout:     2 * *remoteDuration,
	}
	client := &http.Client{Transport: tr, Timeout: *remoteTimeout}

	// Warm the daemon's plan cache so the run measures the cached
	// serving path, then verify the target is reachable.
	for _, q := range queries {
		resp, err := client.Get(queryURL(base, *remoteDoc, q.XPath))
		if err != nil {
			fatal(fmt.Errorf("daemon unreachable: %w", err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("warmup %s: HTTP %d (is -remote-doc %q loaded?)", q.ID, resp.StatusCode, *remoteDoc))
		}
	}

	fmt.Fprintf(os.Stderr, "vbench: driving %d connections at %s for %v (%s on %q)\n",
		*remoteConns, base, *remoteDuration, *remoteQueries, *remoteDoc)

	deadline := time.Now().Add(*remoteDuration)
	results := make([]workerResult, *remoteConns)
	var wg sync.WaitGroup
	for w := 0; w < *remoteConns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := workerResult{
				samples:  make(map[string][]remoteSample),
				rejected: make(map[string]int),
			}
			tenant := fmt.Sprintf("load-%d", w%max(1, *remoteTenants))
			for i := 0; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				req, err := http.NewRequest(http.MethodGet, queryURL(base, *remoteDoc, q.XPath), nil)
				if err != nil {
					res.errors++
					continue
				}
				req.Header.Set("X-Vamana-Tenant", tenant)
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					// Client-side timeout: the request neither finished nor
					// was rejected — the "hung" bucket the gate wants at 0.
					if strings.Contains(err.Error(), "Client.Timeout") {
						res.hung++
					} else {
						res.errors++
					}
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				elapsed := time.Since(start)
				switch {
				case err != nil:
					res.errors++
				case resp.StatusCode == http.StatusOK:
					res.ok++
					s := remoteSample{lat: elapsed, id: resp.Header.Get("X-Vamana-Request")}
					if qw := resp.Header.Get("X-Vamana-Queue-Wait"); qw != "" {
						if d, perr := time.ParseDuration(qw); perr == nil {
							s.queue = d
						}
					}
					res.samples[q.ID] = append(res.samples[q.ID], s)
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					res.rejected[rejectionReason(body)]++
				default:
					res.errors++
				}
			}
			results[w] = res
		}(w)
	}
	wg.Wait()

	report := remoteReport{
		Benchmark: "vbench-remote",
		URL:       base,
		Doc:       *remoteDoc,
		Conns:     *remoteConns,
		Tenants:   *remoteTenants,
		DurationS: remoteDuration.Seconds(),
		Queries:   make(map[string]remoteSeries),
		Outcomes:  remoteOutcomes{Rejected: make(map[string]int)},
	}
	merged := make(map[string][]remoteSample)
	for _, res := range results {
		report.Outcomes.OK += res.ok
		report.Outcomes.Errors += res.errors
		report.Outcomes.Hung += res.hung
		for reason, n := range res.rejected {
			report.Outcomes.Rejected[reason] += n
		}
		for id, ss := range res.samples {
			merged[id] = append(merged[id], ss...)
		}
	}
	for id, ss := range merged {
		sort.Slice(ss, func(i, j int) bool { return ss[i].lat < ss[j].lat })
		lats := make([]time.Duration, len(ss))
		queues := make([]time.Duration, len(ss))
		for i, s := range ss {
			lats[i], queues[i] = s.lat, s.queue
		}
		sort.Slice(queues, func(i, j int) bool { return queues[i] < queues[j] })
		series := remoteSeries{
			Requests:       len(ss),
			P50us:          float64(percentile(lats, 0.50).Microseconds()),
			P95us:          float64(percentile(lats, 0.95).Microseconds()),
			P99us:          float64(percentile(lats, 0.99).Microseconds()),
			QPS:            float64(len(ss)) / remoteDuration.Seconds(),
			QueueWaitP50us: float64(percentile(queues, 0.50).Microseconds()),
			QueueWaitP95us: float64(percentile(queues, 0.95).Microseconds()),
			QueueWaitP99us: float64(percentile(queues, 0.99).Microseconds()),
		}
		// Record the p99-and-above outliers (worst first, capped) by
		// wire request ID so a bad tail is directly greppable in the
		// daemon's access log and flight recorder.
		p99 := percentile(lats, 0.99)
		for i := len(ss) - 1; i >= 0 && len(series.WorstRequests) < 8; i-- {
			if ss[i].lat < p99 {
				break
			}
			if ss[i].id == "" {
				continue
			}
			series.WorstRequests = append(series.WorstRequests, remoteWorst{
				ID:        ss[i].id,
				LatencyUS: float64(ss[i].lat.Microseconds()),
				QueueUS:   float64(ss[i].queue.Microseconds()),
			})
		}
		report.Queries[id] = series
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *remoteOut == "" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(*remoteOut, out, 0o644); err != nil {
		fatal(err)
	}

	for id, s := range report.Queries {
		fmt.Fprintf(os.Stderr, "vbench: %s p50 %.0fus p95 %.0fus p99 %.0fus (%d requests)\n",
			id, s.P50us, s.P95us, s.P99us, s.Requests)
	}
	fmt.Fprintf(os.Stderr, "vbench: %d ok, %v rejected, %d errors, %d hung\n",
		report.Outcomes.OK, report.Outcomes.Rejected, report.Outcomes.Errors, report.Outcomes.Hung)
	if report.Outcomes.Hung > 0 {
		fatal(fmt.Errorf("%d requests hung past the client timeout", report.Outcomes.Hung))
	}
}

// queryURL builds the daemon query URL for one expression.
func queryURL(base, doc, expr string) string {
	return base + "/v1/query?" + url.Values{"doc": {doc}, "q": {expr}}.Encode()
}

// rejectionReason extracts the typed reason from a rejection envelope.
func rejectionReason(body []byte) string {
	var env struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Reason == "" {
		return "unknown"
	}
	return env.Reason
}

// percentile returns the p-quantile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
