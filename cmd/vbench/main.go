// Command vbench regenerates the paper's evaluation figures (§VIII):
// execution time of queries Q1-Q5 across engines and XMark document
// sizes, plus the optimizer-overhead series.
//
//	vbench                                  # default sweep (1,5,10 MB)
//	vbench -sizes 1,5,10,20,30 -faithful    # the paper's sweep with
//	                                        # published capacity limits
//	vbench -queries Q1,Q5 -engines VQP,VQP-OPT -repeat 5
//	vbench -batch 1 -out scripts/out/vbench_tuple.txt
//	                                        # tuple-at-a-time executor,
//	                                        # report under scripts/out/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"vamana/internal/bench"
	"vamana/internal/core"
	"vamana/internal/exec"
	"vamana/internal/mass"
	"vamana/internal/obs"
)

func main() {
	var (
		sizesFlag   = flag.String("sizes", "1,5,10", "document sizes in MB, comma separated")
		queriesFlag = flag.String("queries", "Q1,Q2,Q3,Q4,Q5", "workload queries to run")
		enginesFlag = flag.String("engines", "Galax,Jaxen,eXist,VQP,VQP-OPT", "engines to compare")
		repeat      = flag.Int("repeat", 3, "timed repetitions per point (best is reported)")
		seed        = flag.Int64("seed", 42, "XMark generator seed")
		faithful    = flag.Bool("faithful", false, "apply the paper's published per-engine capacity limits")
		overhead    = flag.Bool("overhead", true, "also report optimization overhead per query")
		mem         = flag.Bool("mem", false, "also report per-engine memory footprints")
		batch       = flag.Int("batch", 0, "executor pull-batch size for the VAMANA engines (0 = engine default; 1 = tuple-at-a-time)")
		jsonOut     = flag.Bool("json", false, "emit the benchmark table as JSON (with cache hit-ratio and batch-size columns)")
		outPath     = flag.String("out", "", "write the report to this file instead of stdout (keep generated runs under scripts/out/, which is gitignored)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metricsAddr = flag.String("metrics-addr", "", "serve the global metrics endpoint on this address")
		traceOut    = flag.String("trace-out", "", "after the sweep, run each query once traced and write Chrome trace JSON to this file")
	)
	flag.Parse()

	if *remoteURL != "" {
		runRemote()
		return
	}

	if *metricsAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", obs.Handler())
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "vbench: metrics endpoint:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vbench:", err)
			}
		}()
	}

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fatal(err)
	}
	queries, err := parseQueries(*queriesFlag)
	if err != nil {
		fatal(err)
	}
	engines, err := parseEngines(*enginesFlag)
	if err != nil {
		fatal(err)
	}

	// Reports go to stdout by default; -out redirects them to a file so
	// generated runs live under scripts/out/ instead of the repo root.
	var out io.Writer = os.Stdout
	if *outPath != "" {
		if dir := filepath.Dir(*outPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	if !*jsonOut {
		fmt.Fprintf(out, "VAMANA evaluation harness — XMark seed %d, %d repetition(s), faithful limits: %v, exec batch: %d\n\n",
			*seed, *repeat, *faithful, effectiveBatch(*batch))
	}

	var fixtures []*bench.Fixture
	for _, mb := range sizes {
		fmt.Fprintf(os.Stderr, "generating and indexing %d MB fixture...\n", mb)
		f, err := bench.NewFixtureExecBatch(mb<<20, *seed, *faithful, *batch)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fixtures = append(fixtures, f)
	}
	fmt.Fprintln(os.Stderr)

	if *jsonOut {
		if err := emitJSON(out, fixtures, queries, engines, *repeat, *seed, *faithful, effectiveBatch(*batch)); err != nil {
			fatal(err)
		}
		return
	}

	for _, q := range queries {
		results := bestOf(fixtures, q, engines, *repeat)
		fmt.Fprintln(out, bench.FormatFigure(q, results, engines))
	}

	if *overhead {
		printOverhead(out, fixtures, queries)
	}
	printEstimateQuality(out, fixtures, queries)
	if *mem {
		fmt.Fprintln(out)
		for _, f := range fixtures {
			var results []bench.MemoryResult
			for _, e := range []bench.Engine{bench.EngineJaxen, bench.EngineGalax, bench.EngineEXist, bench.EngineVQP} {
				results = append(results, bench.MeasureEngineMemory(f.Source(), e))
			}
			fmt.Fprintln(out, bench.FormatMemoryTable(results))
		}
	}

	if *traceOut != "" {
		if err := writeTraces(*traceOut, fixtures, queries); err != nil {
			fatal(err)
		}
	}
}

// writeTraces runs each workload query once per fixture with span
// recording on (after the timed sweep, so tracing never perturbs the
// reported numbers) and writes the collected traces as a Chrome
// trace-event file for Perfetto / chrome://tracing.
func writeTraces(path string, fixtures []*bench.Fixture, queries []bench.Query) error {
	var traces []*obs.QueryTrace
	for _, f := range fixtures {
		engine, doc := f.VamanaEngine()
		engine.EnableFlightRecorder(len(queries))
		for _, q := range queries {
			it, err := engine.Query(doc, q.XPath)
			if err != nil {
				return fmt.Errorf("trace %s: %w", q.ID, err)
			}
			for it.Next() {
			}
			it.Close()
		}
		// snapshot is newest first; keep run order within the fixture.
		ts := engine.Traces()
		for i := len(ts) - 1; i >= 0; i-- {
			traces = append(traces, ts[i])
		}
		engine.EnableFlightRecorder(0)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := obs.WriteChromeTrace(out, traces); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d trace(s) to %s — open in https://ui.perfetto.dev\n", len(traces), path)
	return nil
}

// bestOf repeats each point and keeps the fastest successful run —
// standard practice for wall-clock microbenchmarks.
func bestOf(fixtures []*bench.Fixture, q bench.Query, engines []bench.Engine, repeat int) []bench.Result {
	var out []bench.Result
	for _, f := range fixtures {
		for _, e := range engines {
			best := f.Run(e, q)
			for i := 1; i < repeat && best.Err == nil; i++ {
				r := f.Run(e, q)
				if r.Err == nil && r.Duration < best.Duration {
					best = r
				}
			}
			out = append(out, best)
		}
	}
	return out
}

// jsonRow is one benchmark point in -json output. The hit-ratio and
// batch-size columns are present only for the VAMANA engines (VQP,
// VQP-OPT): the page-cache ratio covers index-node loads during the
// point's runs, the memo ratio covers the optimizer's statistics probes
// (VQP-OPT only), and batch_size is the executor pull-batch size the
// point ran with.
type jsonRow struct {
	Query             string   `json:"query"`
	XPath             string   `json:"xpath"`
	Engine            string   `json:"engine"`
	SizeMB            int      `json:"size_mb"`
	BatchSize         int      `json:"batch_size,omitempty"`
	Count             int      `json:"count"`
	DurationNS        int64    `json:"duration_ns"`
	OptTimeNS         int64    `json:"opt_time_ns,omitempty"`
	Error             string   `json:"error,omitempty"`
	PageCacheHitRatio *float64 `json:"page_cache_hit_ratio,omitempty"`
	MemoHitRatio      *float64 `json:"memo_hit_ratio,omitempty"`
	// Estimate quality (VAMANA engines only): the geometric-mean q-error
	// over the plan's step operators and the worst-misestimated operator
	// with its q-error, from one analyzed run after the timed sweep.
	GeomeanQError *float64 `json:"geomean_q_error,omitempty"`
	WorstOp       string   `json:"worst_op,omitempty"`
	WorstQError   *float64 `json:"worst_q_error,omitempty"`
}

type jsonReport struct {
	Seed      int64     `json:"seed"`
	Repeat    int       `json:"repeat"`
	Faithful  bool      `json:"faithful"`
	BatchSize int       `json:"batch_size"`
	Results   []jsonRow `json:"results"`
}

// effectiveBatch mirrors the executor's clamping of the configured batch
// size so reports record the size actually used.
func effectiveBatch(b int) int {
	switch {
	case b <= 0:
		return exec.DefaultBatch
	case b > exec.MaxBatch:
		return exec.MaxBatch
	default:
		return b
	}
}

// emitJSON runs the sweep and writes it as one JSON document, capturing
// storage and plan-cache counter deltas around each point to derive the
// hit-ratio columns.
func emitJSON(w io.Writer, fixtures []*bench.Fixture, queries []bench.Query, engines []bench.Engine, repeat int, seed int64, faithful bool, batch int) error {
	rep := jsonReport{Seed: seed, Repeat: repeat, Faithful: faithful, BatchSize: batch, Results: []jsonRow{}}
	for _, q := range queries {
		for _, f := range fixtures {
			for _, e := range engines {
				rep.Results = append(rep.Results, runPointJSON(f, e, q, repeat, batch))
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runPointJSON(f *bench.Fixture, e bench.Engine, q bench.Query, repeat, batch int) jsonRow {
	eng, _ := f.VamanaEngine()
	vamanaEngine := e == bench.EngineVQP || e == bench.EngineVQPOpt
	var sm0 mass.StoreMetrics
	var cs0 core.CacheStats
	if vamanaEngine {
		sm0 = eng.Store().Metrics()
		cs0 = eng.CacheStats()
	}
	best := f.Run(e, q)
	for i := 1; i < repeat && best.Err == nil; i++ {
		r := f.Run(e, q)
		if r.Err == nil && r.Duration < best.Duration {
			best = r
		}
	}
	row := jsonRow{
		Query:      q.ID,
		XPath:      q.XPath,
		Engine:     string(e),
		SizeMB:     f.SizeBytes >> 20,
		Count:      best.Count,
		DurationNS: best.Duration.Nanoseconds(),
		OptTimeNS:  best.OptTime.Nanoseconds(),
	}
	if vamanaEngine {
		row.BatchSize = batch
	}
	if best.Err != nil {
		row.Error = best.Err.Error()
	}
	if vamanaEngine && best.Err == nil {
		sm1 := eng.Store().Metrics()
		cs1 := eng.CacheStats()
		row.PageCacheHitRatio = hitRatio(sm1.Index.CacheHits-sm0.Index.CacheHits,
			sm1.Index.CacheMisses-sm0.Index.CacheMisses)
		if e == bench.EngineVQPOpt {
			row.MemoHitRatio = hitRatio(cs1.ProbeHits-cs0.ProbeHits, cs1.ProbeMisses-cs0.ProbeMisses)
		}
		eq, err := measureEstimateQuality(eng, q.XPath, e == bench.EngineVQPOpt, f)
		if err == nil && eq.samples > 0 {
			g, wq := eq.geomean, eq.worstQ
			row.GeomeanQError, row.WorstOp, row.WorstQError = &g, eq.worstOp, &wq
		}
	}
	return row
}

// estimateQuality summarizes one analyzed run's est-vs-act accuracy.
type estimateQuality struct {
	samples int
	geomean float64 // geometric mean q-error over step operators
	worstOp string
	worstQ  float64
}

// measureEstimateQuality analyzes expr once (untimed, after the point's
// measured runs) and folds each step's estimated OUT against its actual
// OUT into a geometric-mean q-error plus the worst operator.
func measureEstimateQuality(eng *core.Engine, expr string, optimized bool, f *bench.Fixture) (estimateQuality, error) {
	_, doc := f.VamanaEngine()
	q, err := eng.CompileCached(doc, expr, optimized)
	if err != nil {
		return estimateQuality{}, err
	}
	a, err := q.Analyze(doc)
	if err != nil {
		return estimateQuality{}, err
	}
	var eq estimateQuality
	var sumLog float64
	for _, st := range a.Stats {
		if st.Op == nil || !st.Op.Cost.Done {
			continue
		}
		qerr := obs.QError(st.Op.Cost.Out, st.Out)
		sumLog += math.Log2(qerr)
		eq.samples++
		if qerr > eq.worstQ {
			eq.worstQ, eq.worstOp = qerr, st.Op.Label()
		}
	}
	if eq.samples > 0 {
		eq.geomean = math.Exp2(sumLog / float64(eq.samples))
	}
	return eq, nil
}

// hitRatio returns hits/(hits+misses), or nil when the point generated no
// traffic against the cache at all.
func hitRatio(hits, misses uint64) *float64 {
	total := hits + misses
	if total == 0 {
		return nil
	}
	r := float64(hits) / float64(total)
	return &r
}

func printOverhead(out io.Writer, fixtures []*bench.Fixture, queries []bench.Query) {
	fmt.Fprintln(out, "Optimization overhead (compile + statistics probes + rewriting) vs. optimized execution.")
	fmt.Fprintln(out, "'cached' is the same compilation served from the engine's plan cache (the DB.Query fast")
	fmt.Fprintln(out, "path); its ratio is what a serving workload actually pays per repeated query.")
	fmt.Fprintf(out, "%-10s%-6s%14s%14s%14s%10s%14s\n", "size", "query", "optimize", "cached", "execute", "ratio", "cached-ratio")
	for _, f := range fixtures {
		eng, doc := f.VamanaEngine()
		for _, q := range queries {
			r := f.Run(bench.EngineVQPOpt, q)
			if r.Err != nil {
				continue
			}
			cached, err := timeCachedCompile(eng, doc, q.XPath)
			if err != nil {
				continue
			}
			ratio := float64(r.OptTime) / float64(r.Duration)
			cachedRatio := float64(cached) / float64(r.Duration)
			fmt.Fprintf(out, "%-10s%-6s%14s%14s%14s%9.2f%%%13.2f%%\n",
				fmt.Sprintf("%dMB", f.SizeBytes>>20), q.ID,
				r.OptTime.Round(time.Microsecond), cached.Round(time.Nanosecond),
				r.Duration.Round(time.Microsecond), 100*ratio, 100*cachedRatio)
		}
	}
}

// printEstimateQuality renders the cost model's est-vs-act accuracy per
// query: geometric-mean q-error over the optimized plan's steps and the
// worst-misestimated operator. One untimed analyzed run per point.
func printEstimateQuality(out io.Writer, fixtures []*bench.Fixture, queries []bench.Query) {
	fmt.Fprintln(out)
	fmt.Fprintln(out, "Estimate quality (VQP-OPT): geometric-mean q-error = max(est/act, act/est) over the")
	fmt.Fprintln(out, "plan's step operators (1.0 = exact), and the step whose estimate missed by the most.")
	fmt.Fprintf(out, "%-10s%-6s%10s%10s  %s\n", "size", "query", "geomean-q", "worst-q", "worst operator")
	for _, f := range fixtures {
		eng, _ := f.VamanaEngine()
		for _, q := range queries {
			eq, err := measureEstimateQuality(eng, q.XPath, true, f)
			if err != nil || eq.samples == 0 {
				continue
			}
			fmt.Fprintf(out, "%-10s%-6s%10.2f%10.2f  %s\n",
				fmt.Sprintf("%dMB", f.SizeBytes>>20), q.ID, eq.geomean, eq.worstQ, eq.worstOp)
		}
	}
}

// timeCachedCompile measures a warm plan-cache lookup for expr: the
// compile-side cost DB.Query pays per call once the plan is cached.
func timeCachedCompile(eng *core.Engine, doc mass.DocID, expr string) (time.Duration, error) {
	if _, err := eng.CompileCached(doc, expr, true); err != nil {
		return 0, err
	}
	const iters = 1000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := eng.CompileCached(doc, expr, true); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / iters, nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("vbench: bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseQueries(s string) ([]bench.Query, error) {
	var out []bench.Query
	for _, part := range strings.Split(s, ",") {
		q, ok := bench.QueryByID(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf("vbench: unknown query %q", part)
		}
		out = append(out, q)
	}
	return out, nil
}

func parseEngines(s string) ([]bench.Engine, error) {
	var out []bench.Engine
	for _, part := range strings.Split(s, ",") {
		e := bench.Engine(strings.TrimSpace(part))
		valid := false
		for _, known := range bench.AllEngines {
			if e == known {
				valid = true
			}
		}
		if !valid {
			return nil, fmt.Errorf("vbench: unknown engine %q", part)
		}
		out = append(out, e)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vbench:", err)
	os.Exit(1)
}
