// Command xmarkgen generates XMark-shaped auction documents (the paper's
// benchmark data) deterministically.
//
// Usage:
//
//	xmarkgen -size 10MB -seed 42 -o auction.xml
//	xmarkgen -factor 0.1 > auction.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vamana/internal/xmark"
)

func main() {
	var (
		sizeStr = flag.String("size", "", "target document size, e.g. 512KB, 10MB (overrides -factor)")
		factor  = flag.Float64("factor", 0.01, "XMark scale factor (1.0 is roughly 100MB)")
		seed    = flag.Int64("seed", 42, "random seed; equal configs generate identical documents")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	f := *factor
	if *sizeStr != "" {
		bytes, err := parseSize(*sizeStr)
		if err != nil {
			fatal(err)
		}
		f = xmark.FactorForBytes(bytes)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer file.Close()
		w = file
	}
	n, err := xmark.Generate(w, xmark.Config{Factor: f, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	c := xmark.CountsFor(f)
	fmt.Fprintf(os.Stderr, "wrote %.2f MB (factor %.4f): %d persons, %d items, %d open auctions, %d closed auctions\n",
		float64(n)/(1<<20), f, c.Persons, c.Items, c.OpenAuctions, c.ClosedAuctions)
}

func parseSize(s string) (int, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	case strings.HasSuffix(u, "B"):
		u = strings.TrimSuffix(u, "B")
	}
	n, err := strconv.Atoi(strings.TrimSpace(u))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("xmarkgen: bad size %q", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmarkgen:", err)
	os.Exit(1)
}
