package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"10MB", 10 << 20, true},
		{"512KB", 512 << 10, true},
		{"1GB", 1 << 30, true},
		{"100B", 100, true},
		{"100", 100, true},
		{" 2 MB ", 2 << 20, true},
		{"10mb", 10 << 20, true},
		{"", 0, false},
		{"-5MB", 0, false},
		{"tenMB", 0, false},
		{"0", 0, false},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseSize(%q) succeeded with %d, want error", c.in, got)
		}
	}
}
