// Command vamanad is the VAMANA serving daemon: one engine process
// serving a catalog of documents to many tenants over HTTP, with
// admission control in front of execution and graceful drain on
// SIGTERM/SIGINT.
//
//	vamanad -xmark 0.02 -addr :8372
//	vamanad -load catalog=catalog.xml -load orders=orders.xml \
//	        -max-inflight 32 -queue-depth 256 -queue-wait 500ms \
//	        -tenants tenants.json
//
// Endpoints:
//
//	GET /v1/query?doc=<name>&q=<xpath>        NDJSON result stream
//	GET /v1/docs                              loaded document names
//	GET /v1/stats                             admission + tenant state
//	GET /healthz                              200, or 503 while draining
//	GET /metrics                              Prometheus text metrics
//	GET /debug/vamana/requests                recent + slow request rings
//	GET /debug/vamana/*                       engine debug handlers
//
// Requests carry their tenant in the X-Vamana-Tenant header; the
// -tenants file maps tenant names to entitlements (resource-budget
// ceilings, in-flight caps, plan-cache quotas):
//
//	{
//	  "default": {"limits": {"MaxResults": 100000}, "max_inflight": 8},
//	  "tenants": {
//	    "gold": {"max_inflight": 32, "plan_quota": 256},
//	    "batch": {"limits": {"Timeout": 2000000000}, "max_inflight": 2}
//	  }
//	}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"syscall"
	"time"

	"vamana"
	"vamana/internal/serve"
	"vamana/internal/xmark"
)

// loadFlag collects repeated -load name=path pairs.
type loadFlag []string

func (l *loadFlag) String() string     { return strings.Join(*l, ",") }
func (l *loadFlag) Set(v string) error { *l = append(*l, v); return nil }

// tenantsFile is the on-disk shape of the -tenants config.
type tenantsFile struct {
	Default serve.TenantConfig            `json:"default"`
	Tenants map[string]serve.TenantConfig `json:"tenants"`
}

func main() {
	var loads loadFlag
	var (
		addr         = flag.String("addr", ":8372", "listen address")
		path         = flag.String("path", "", "backing store file (empty = in-memory)")
		cachePages   = flag.Int("cache-pages", 0, "index page cache size in 8 KiB pages (0 = default)")
		xmarkFactor  = flag.Float64("xmark", 0, "generate an XMark document at this factor as document \"auction\"")
		xmarkSeed    = flag.Int64("xmark-seed", 51, "XMark generator seed")
		maxInflight  = flag.Int("max-inflight", 64, "global cap on concurrently executing queries")
		queueDepth   = flag.Int("queue-depth", 256, "admission queue bound")
		queueWait    = flag.Duration("queue-wait", time.Second, "longest time a request may wait queued")
		maxConns     = flag.Int("max-conns", 0, "cap on concurrently accepted connections (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain")
		tenantsPath  = flag.String("tenants", "", "tenant entitlements JSON file")
		slowQuery    = flag.Duration("slow-query", 0, "slow-query threshold (0 = off)")
		recorder     = flag.Int("flight-recorder", 128, "flight-recorder ring size (0 = off)")
		accessLog    = flag.String("access-log", "", "access log destination: a file path, \"stderr\", or \"stdout\" (empty = off)")
		requestRing  = flag.Int("request-ring", 256, "recent/slow request ring size at /debug/vamana/requests (negative = off)")
		slowRequest  = flag.Duration("slow-request", 500*time.Millisecond, "slow-request ring threshold (negative = off)")
		noRequestObs = flag.Bool("no-request-obs", false, "disable per-request observability (IDs, SLO histograms, access log, request rings)")
	)
	flag.Var(&loads, "load", "load an XML document: name=path (repeatable)")
	flag.Parse()

	opts := vamana.Options{
		Path:               *path,
		CachePages:         *cachePages,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLog:       os.Stderr,
		FlightRecorderSize: *recorder,
	}
	if *slowQuery == 0 {
		opts.SlowQueryLog = nil
	}
	db, err := vamana.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	loaded := make(map[string]bool)
	for _, name := range db.Documents() {
		loaded[name] = true // pre-existing documents in a file-backed store
	}
	for _, spec := range loads {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -load %q, want name=path", spec))
		}
		if loaded[name] {
			fmt.Fprintf(os.Stderr, "vamanad: document %q already in store, skipping load\n", name)
			continue
		}
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		_, err = db.LoadXML(name, f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("load %s: %w", spec, err))
		}
		loaded[name] = true
	}
	if *xmarkFactor > 0 && !loaded["auction"] {
		src := xmark.GenerateString(xmark.Config{Factor: *xmarkFactor, Seed: *xmarkSeed})
		if _, err := db.LoadXMLString("auction", src); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vamanad: generated XMark document \"auction\" (%.1f KB)\n", float64(len(src))/1024)
	}
	if len(db.Documents()) == 0 {
		fatal(errors.New("no documents: pass -load name=path or -xmark <factor>"))
	}

	cfg := serve.Config{
		DB:                   db,
		MaxInflight:          *maxInflight,
		QueueDepth:           *queueDepth,
		QueueWait:            *queueWait,
		MaxConns:             *maxConns,
		DrainTimeout:         *drainTimeout,
		RequestRingSize:      *requestRing,
		SlowRequestThreshold: *slowRequest,
		DisableRequestObs:    *noRequestObs,
	}
	switch *accessLog {
	case "":
	case "stderr":
		cfg.AccessLog = os.Stderr
	case "stdout":
		cfg.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	if *tenantsPath != "" {
		raw, err := os.ReadFile(*tenantsPath)
		if err != nil {
			fatal(err)
		}
		var tf tenantsFile
		if err := json.Unmarshal(raw, &tf); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *tenantsPath, err))
		}
		cfg.DefaultTenant = tf.Default
		cfg.Tenants = tf.Tenants
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	drained := srv.HandleSignals(syscall.SIGTERM, syscall.SIGINT)

	fmt.Fprintf(os.Stderr, "vamanad: serving %v on %s\n", db.Documents(), *addr)
	if err := srv.ListenAndServe(*addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	// The listener closed because a signal started the drain; wait for
	// in-flight streams to finish.
	if err := <-drained; err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "vamanad: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vamanad:", err)
	os.Exit(1)
}
