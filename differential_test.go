package vamana

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vamana/internal/baseline/dom"
)

// Randomized differential testing (in the spirit of the Galax comparison
// work): a seeded generator produces random documents and random XPath
// expressions, each executed three ways — the unoptimized plan (VQP), the
// cost-optimized plan (VQP-OPT), and the DOM oracle — and any disagreement
// in the ordered result-key lists fails with the reproducing seed.
//
// TestDifferentialRandom runs a short deterministic sweep in every `go
// test`; the stress build tag (differential_stress_test.go) runs the
// ≥1000-pair campaign wired into scripts/check.sh.

// diffGen generates random documents and queries from one seeded source.
type diffGen struct {
	r *rand.Rand
}

var (
	diffElems = []string{"aa", "bb", "cc", "dd", "ee"}
	diffAttrs = []string{"p", "q"}
	diffTexts = []string{"red", "blue", "7", "42", "100"}
)

func (g *diffGen) pick(list []string) string { return list[g.r.Intn(len(list))] }

// genDoc produces a random XML document of up to ~80 nodes, depth <= 5,
// with random attributes and text values drawn from small pools so that
// value predicates sometimes match.
func (g *diffGen) genDoc() string {
	var sb strings.Builder
	budget := 10 + g.r.Intn(70)
	sb.WriteString("<root>")
	g.genContent(&sb, 1, &budget)
	sb.WriteString("</root>")
	return sb.String()
}

func (g *diffGen) genContent(sb *strings.Builder, depth int, budget *int) {
	n := 1 + g.r.Intn(4)
	for i := 0; i < n && *budget > 0; i++ {
		*budget--
		if g.r.Intn(4) == 0 {
			sb.WriteString(g.pick(diffTexts))
			continue
		}
		name := g.pick(diffElems)
		sb.WriteByte('<')
		sb.WriteString(name)
		for a := g.r.Intn(3); a > 0; a-- {
			fmt.Fprintf(sb, " %s=%q", g.pick(diffAttrs), g.pick(diffTexts))
		}
		sb.WriteByte('>')
		if depth < 5 && g.r.Intn(3) > 0 {
			g.genContent(sb, depth+1, budget)
		}
		sb.WriteString("</")
		sb.WriteString(name)
		sb.WriteByte('>')
	}
}

// genQuery produces a random XPath expression over the generated
// vocabulary: 1–3 steps, the full axis set except namespace, name / * /
// text() / node() tests, value-, position-, count- and string-function
// predicates, and an occasional union.
func (g *diffGen) genQuery() string {
	q := g.genPath()
	if g.r.Intn(8) == 0 {
		q += " | " + g.genPath()
	}
	return q
}

func (g *diffGen) genPath() string {
	var sb strings.Builder
	steps := 1 + g.r.Intn(3)
	for i := 0; i < steps; i++ {
		if g.r.Intn(2) == 0 {
			sb.WriteString("//")
		} else {
			sb.WriteString("/")
		}
		sb.WriteString(g.genStep(i == steps-1))
	}
	return sb.String()
}

func (g *diffGen) genStep(last bool) string {
	// Attribute steps only at the tail: attributes have no content to
	// continue a path through.
	if last && g.r.Intn(6) == 0 {
		if g.r.Intn(2) == 0 {
			return "@" + g.pick(diffAttrs)
		}
		return "@*"
	}
	axis := ""
	switch g.r.Intn(10) {
	case 0:
		axis = "descendant::"
	case 1:
		axis = "ancestor::"
	case 2:
		axis = "ancestor-or-self::"
	case 3:
		axis = "following-sibling::"
	case 4:
		axis = "preceding-sibling::"
	case 5:
		axis = "following::"
	case 6:
		axis = "preceding::"
	case 7:
		axis = "parent::"
	case 8:
		axis = "self::"
	default: // child, the common case
	}
	test := g.pick(diffElems)
	switch g.r.Intn(6) {
	case 0:
		test = "*"
	case 1:
		if last {
			test = "text()"
		}
	case 2:
		if last {
			test = "node()"
		}
	}
	step := axis + test
	if test != "text()" && test != "node()" {
		for p := g.r.Intn(3); p > 0; p-- {
			step += g.genPredicate()
		}
	}
	return step
}

func (g *diffGen) genPredicate() string {
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("[%d]", 1+g.r.Intn(3))
	case 1:
		return "[last()]"
	case 2:
		return "[" + g.pick(diffElems) + "]"
	case 3:
		return fmt.Sprintf("[@%s='%s']", g.pick(diffAttrs), g.pick(diffTexts))
	case 4:
		return fmt.Sprintf("[text()='%s']", g.pick(diffTexts))
	case 5:
		return fmt.Sprintf("[count(%s) > %d]", g.pick(diffElems), g.r.Intn(3))
	case 6:
		return fmt.Sprintf("[contains(%s, '%s')]", g.pick(diffElems), g.pick([]string{"e", "re", "1", "0"}))
	case 7:
		return fmt.Sprintf("[starts-with(%s, '%s')]", g.pick(diffElems), g.pick([]string{"r", "b", "4"}))
	default:
		return fmt.Sprintf("[%s > %d]", g.pick(diffElems), 10+g.r.Intn(90))
	}
}

// diffBatchSizes are the executor pull-batch sizes every pair runs at:
// tuple-at-a-time (the pre-batching executor, byte-for-byte the reference
// stream), the smallest true batch (exercises batch-edge refills on
// almost every pull), and the two production sizes. Duplicates or drops
// at batch boundaries, and ordered-merge mistakes in union plans, show up
// as a disagreement between sizes.
var diffBatchSizes = []int{1, 2, 64, 256}

// runDifferential executes pairs (document, query) derived from seed and
// fails on any disagreement, printing everything needed to reproduce: the
// pair's seed, the document, and the expression. Each pair runs three
// ways (VQP, VQP-OPT, DOM oracle) at every batch size in diffBatchSizes;
// the ordered result-key lists must match the oracle at every size, and
// the unordered (pipelined) streams must be element-wise identical across
// sizes.
func runDifferential(t *testing.T, seed int64, docs, queriesPerDoc int) {
	t.Helper()
	pairs := 0
	for d := 0; d < docs; d++ {
		docSeed := seed + int64(d)
		g := &diffGen{r: rand.New(rand.NewSource(docSeed))}
		src := g.genDoc()

		dbs := make([]*DB, len(diffBatchSizes))
		diffDocs := make([]*Document, len(diffBatchSizes))
		for i, b := range diffBatchSizes {
			db, err := Open(Options{ExecBatchSize: b})
			if err != nil {
				t.Fatal(err)
			}
			dbs[i] = db
			if diffDocs[i], err = db.LoadXMLString("doc", src); err != nil {
				t.Fatalf("doc seed %d: load: %v\n%s", docSeed, err, src)
			}
		}
		oracleDoc, err := dom.Parse(strings.NewReader(src))
		if err != nil {
			t.Fatalf("doc seed %d: oracle parse: %v\n%s", docSeed, err, src)
		}
		oracle := dom.New(oracleDoc, dom.Options{})

		for qi := 0; qi < queriesPerDoc; qi++ {
			expr := g.genQuery()
			pairs++
			fail := func(format string, args ...any) {
				t.Fatalf("seed %d query %d: %s\nexpr: %s\ndoc: %s",
					docSeed, qi, fmt.Sprintf(format, args...), expr, src)
			}

			oracleNodes, err := oracle.Eval(expr)
			if err != nil {
				fail("oracle error: %v", err)
			}
			want := dom.Keys(oracleNodes)

			for _, eng := range []struct {
				name    string
				compile func(db *DB, doc *Document) (*Query, error)
			}{
				{"VQP", func(db *DB, _ *Document) (*Query, error) { return db.Compile(expr) }},
				{"VQP-OPT", func(db *DB, doc *Document) (*Query, error) { return db.CompileOptimized(doc, expr) }},
			} {
				// refStream is the batch-1 pipelined (unordered) key
				// stream; every other batch size must reproduce it
				// element for element.
				var refStream []string
				for i, b := range diffBatchSizes {
					q, err := eng.compile(dbs[i], diffDocs[i])
					if err != nil {
						fail("%s compile error: %v", eng.name, err)
					}
					res, err := q.ExecuteOrdered(diffDocs[i])
					if err != nil {
						fail("%s[batch=%d] execute error: %v", eng.name, b, err)
					}
					got, err := res.Keys()
					if err != nil {
						fail("%s[batch=%d] stream error: %v", eng.name, b, err)
					}
					if len(got) != len(want) {
						fail("%s[batch=%d] returned %d nodes, oracle %d\n got: %v\nwant: %v",
							eng.name, b, len(got), len(want), got, want)
					}
					for i := range got {
						if string(want[i]) != got[i] {
							fail("%s[batch=%d] result %d is %s, oracle has %s\n got: %v\nwant: %v",
								eng.name, b, i, got[i], want[i], got, want)
						}
					}

					pres, err := q.Execute(diffDocs[i])
					if err != nil {
						fail("%s[batch=%d] pipelined execute error: %v", eng.name, b, err)
					}
					stream, err := pres.Keys()
					if err != nil {
						fail("%s[batch=%d] pipelined stream error: %v", eng.name, b, err)
					}
					if i == 0 {
						refStream = stream
						continue
					}
					if len(stream) != len(refStream) {
						fail("%s[batch=%d] pipelined stream has %d keys, batch=%d has %d\n got: %v\nwant: %v",
							eng.name, b, len(stream), diffBatchSizes[0], len(refStream), stream, refStream)
					}
					for j := range stream {
						if stream[j] != refStream[j] {
							fail("%s[batch=%d] pipelined key %d is %s, batch=%d has %s\n got: %v\nwant: %v",
								eng.name, b, j, stream[j], diffBatchSizes[0], refStream[j], stream, refStream)
						}
					}
				}
			}
		}
		for _, db := range dbs {
			db.Close()
		}
	}
	t.Logf("differential: %d (document, query) pairs × %d batch sizes, zero disagreements",
		pairs, len(diffBatchSizes))
}

// TestDifferentialRandom is the short deterministic sweep run by plain
// `go test`: 8 documents × 25 queries = 200 pairs.
func TestDifferentialRandom(t *testing.T) {
	runDifferential(t, 7001, 8, 25)
}
