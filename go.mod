module vamana

go 1.23
