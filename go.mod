module vamana

go 1.22
