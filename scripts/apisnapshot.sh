#!/bin/sh
# API surface snapshot: the public API of the root vamana package, as
# printed by `go doc -all .`, is committed as scripts/api_surface.txt.
# This script fails when the live surface differs from the committed
# golden — an API change must be deliberate, reviewed, and re-recorded
# with `scripts/apisnapshot.sh -update`. check.sh runs the diff mode, so
# an accidental export, signature change, or deletion fails CI with the
# exact textual diff.
set -eu

cd "$(dirname "$0")/.."

golden="scripts/api_surface.txt"
current=$(go doc -all .)

case "${1:-}" in
-update)
    printf '%s\n' "$current" >"$golden"
    echo "recorded $(printf '%s\n' "$current" | wc -l | tr -d ' ') lines to $golden"
    ;;
"")
    if [ ! -f "$golden" ]; then
        echo "missing $golden — run scripts/apisnapshot.sh -update to record it" >&2
        exit 1
    fi
    if ! printf '%s\n' "$current" | diff -u "$golden" - >/tmp/apisurface.diff 2>&1; then
        echo "public API surface differs from $golden:" >&2
        cat /tmp/apisurface.diff >&2
        echo "if the change is intentional, re-record with scripts/apisnapshot.sh -update" >&2
        exit 1
    fi
    echo "API surface matches $golden"
    ;;
*)
    echo "usage: scripts/apisnapshot.sh [-update]" >&2
    exit 2
    ;;
esac
