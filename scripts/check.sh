#!/bin/sh
# Repo health check: formatting, vet, build, tests (with the race
# detector) and a serving-path smoke test. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "== no generated bench output tracked"
# Benchmark sweeps write vbench_output.txt / scripts/out locally; they
# are scratch artifacts and must never land in the tree.
tracked=$(git ls-files --cached -- 'vbench_output.txt' 'scripts/out' | head -5)
staged=$(git diff --cached --name-only -- 'vbench_output.txt' 'scripts/out' | head -5)
if [ -n "$tracked$staged" ]; then
    echo "generated bench output is tracked or staged:" >&2
    printf '%s\n%s\n' "$tracked" "$staged" | sed '/^$/d' >&2
    exit 1
fi

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== public API surface (go doc -all vs scripts/api_surface.txt)"
# Accidental exports, signature changes and deletions fail here with a
# textual diff; deliberate API changes re-record the golden with
# scripts/apisnapshot.sh -update.
scripts/apisnapshot.sh

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== serving smoke (BenchmarkServing, 1 iteration)"
go test -run '^$' -bench BenchmarkServing -benchtime 1x .

echo "== metrics overhead gate (warm serving, obs on vs off, 5% budget)"
# Interleaved in-process rounds with collection toggled, best per mode —
# see TestMetricsOverheadGate.
VAMANA_METRICS_GATE=1 go test -run '^TestMetricsOverheadGate$' -v -count 1 .

echo "== governance tests under the race detector"
# Cancellation, deadlines and budgets exercise the executor's pooled run
# state and concurrent governed queries — the -race run is the leak and
# data-race gate the ISSUE requires.
go test -race -run 'TestQueryContext|TestQueryTimeout|TestCancel|TestPreCanceled|TestBudget|TestDefaultLimits|TestConcurrentMixed|TestErrorTaxonomy|TestResultsAll' -count 1 .

echo "== governance overhead gate (governed vs ungoverned serving, 3% budget)"
# Paired interleaved rounds, median per-round ratio — see
# TestGovernanceOverheadGate.
VAMANA_GOVERNANCE_GATE=1 go test -run '^TestGovernanceOverheadGate$' -v -count 1 .

echo "== crash matrix (fault injection at every backend write and sync)"
go test -race -run '^TestCrashMatrix$|^TestFlushCrashMatrix$' -count 1 . ./internal/pager/

echo "== differential stress (optimized vs unoptimized vs DOM oracle)"
# 2,400 seeded (document, query) pairs behind the stress tag; any
# disagreement prints the seed needed to reproduce it. The timeout is the
# fixed time budget — the run takes well under a minute.
go test -tags stress -run '^TestDifferentialStress$' -timeout 10m -count 1 .

echo "== fuzz smokes (10s each)"
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 10s ./internal/xpath/
go test -run '^$' -fuzz '^FuzzFlexKey$' -fuzztime 10s ./internal/flex/
go test -run '^$' -fuzz '^FuzzPagerReopen$' -fuzztime 10s ./internal/pager/

echo "== checksum overhead gate (verified vs raw page reads, 3% budget)"
# Paired interleaved rounds under a constrained page cache so warm
# queries keep reading through the pager — see TestChecksumOverheadGate.
VAMANA_CHECKSUM_GATE=1 go test -run '^TestChecksumOverheadGate$' -v -count 1 .

echo "== trace overhead gate (unsampled tracing vs untraced serving, 1% budget)"
# Allocation pin plus interleaved best-of-rounds timing — see
# TestTraceOverheadGate.
VAMANA_TRACE_GATE=1 go test -run '^TestTraceOverheadGate$' -v -count 1 .

echo "== batch throughput gate (batched vs tuple-at-a-time scan drains, 1.5x floor)"
# Paired interleaved best-of-rounds: the default-batch engine must stay
# >= 1.5x tuple-at-a-time on scan-heavy shapes — see
# TestBatchThroughputGate.
VAMANA_BATCH_GATE=1 go test -run '^TestBatchThroughputGate$' -v -count 1 -timeout 20m .

echo "== cost-observatory tests under the race detector"
# Concurrent accumulator folds, calibration EWMA CASes, epoch-bump
# invalidation, and the on/off differential harness — the observatory's
# correctness battery, run with -race on top of the plain ./... pass.
go test -race -run 'TestCostObservatory|TestCostCalibration|TestCalibrationDifferential|TestSlowQueryWorstOp' -count 1 .

echo "== calibration overhead gate (observatory on vs off, 1% budget, zero-alloc pin)"
# Allocation pin plus interleaved best-of-rounds timing — see
# TestCalibrationOverheadGate.
VAMANA_CALIBRATION_GATE=1 go test -run '^TestCalibrationOverheadGate$' -v -count 1 -timeout 20m .

echo "== snapshot/transaction tests under the race detector"
# Snapshot isolation, transaction atomicity, typed busy/read-only
# errors, and the mixed-workload battery (readers on pinned snapshots
# racing a committing writer, streams byte-identical to committed
# states) — see snapshot_test.go.
go test -race -run 'TestSnapshotIsolation|TestSnapshotReadOnlyPublic|TestUpdateTxnPublic|TestDropBusyPublic|TestPrepareRunEquivalence|TestMixedReadWriteRace' -count 1 .

echo "== mixed read/write gate (reader p95 with paced writer, 1.10x budget)"
# Interleaved solo/mixed best-of-rounds under -race — see
# TestMixedReadWriteGate.
VAMANA_MIXED_GATE=1 go test -race -run '^TestMixedReadWriteGate$' -v -count 1 -timeout 20m .

echo "== server battery under the race detector"
# Admission state machine on the wire, concurrent tenants vs a
# committing writer with byte-identical streams, graceful drain
# (including crash-during-drain recovery), goroutine-leak checks, and
# the request-observability battery (wire IDs, access log, request
# rings, combined serve+engine traces) — the vamanad proof
# obligations. Included in the plain ./... -race pass above, but run
# with -count 1 here so a cached result never masks a flaky race.
go test -race -count 1 ./internal/serve

echo "== remote overhead gate (vamanad HTTP vs in-process, 3x budget)"
# Client-observed cached Q1 p95 over loopback HTTP vs in-process p95,
# paired interleaved rounds, best-of-rounds — see
# TestRemoteOverheadGate.
VAMANA_REMOTE_GATE=1 go test -run '^TestRemoteOverheadGate$' -v -count 1 .

echo "== serve observability overhead gate (request obs on vs off, 2% budget)"
# Remote cached Q1 p95 with the full per-request stack (IDs, SLO
# histograms, access log, rings) vs the same daemon with it disabled,
# paired interleaved rounds, best-of-rounds — see
# TestServeObsOverheadGate.
VAMANA_SERVE_OBS_GATE=1 go test -run '^TestServeObsOverheadGate$' -v -count 1 .

echo "OK"
