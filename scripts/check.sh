#!/bin/sh
# Repo health check: formatting, vet, build, tests (with the race
# detector) and a serving-path smoke test. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== serving smoke (BenchmarkServing, 1 iteration)"
go test -run '^$' -bench BenchmarkServing -benchtime 1x .

echo "== metrics overhead gate (warm serving, obs on vs off, 5% budget)"
# Interleaved in-process rounds with collection toggled, best per mode —
# see TestMetricsOverheadGate.
VAMANA_METRICS_GATE=1 go test -run '^TestMetricsOverheadGate$' -v -count 1 .

echo "OK"
