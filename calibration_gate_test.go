package vamana

import (
	"math"
	"os"
	"testing"

	"vamana/internal/xmark"
)

// TestCalibrationOverheadGate asserts that the cost-model observatory's
// every-query fold costs the warm serving path at most 1%, and — the
// stronger claim, immune to wall-clock noise — that it allocates
// nothing: a warm cache-hit query on a database with the observatory on
// (the default) must cost no more allocations than one with it disabled.
// The fold's only allocating path is recording a new per-class worst
// offender, and the warm-up rounds drive every class's maximum to its
// fixed point first.
//
// Methodology matches the trace and governance gates: single-goroutine
// loops, interleaved rounds, best-of-rounds ratio, several attempts so
// only a persistent regression fails. Skipped unless
// VAMANA_CALIBRATION_GATE is set — scripts/check.sh runs it.
func TestCalibrationOverheadGate(t *testing.T) {
	if os.Getenv("VAMANA_CALIBRATION_GATE") == "" {
		t.Skip("set VAMANA_CALIBRATION_GATE=1 to run the calibration-overhead gate")
	}
	src := xmark.GenerateString(xmark.Config{Factor: xmark.FactorForBytes(32 << 10), Seed: 51})
	open := func(opts Options) (*DB, *Document) {
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		doc, err := db.LoadXMLString("auction", src)
		if err != nil {
			t.Fatal(err)
		}
		// Warm both the plan cache and the observatory's worst-offender
		// maxima: repeat runs of a fixed workload produce identical
		// per-class q-errors, so no new maximum (the fold's only
		// allocation) can appear during measurement.
		for i := 0; i < 3; i++ {
			for _, expr := range workloadExprs {
				drainCount(t, db, doc, expr)
			}
		}
		return db, doc
	}
	offDB, offDoc := open(Options{DisableCostObservatory: true})
	onDB, onDoc := open(Options{}) // observatory on by default

	loop := func(db *DB, doc *Document) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				expr := workloadExprs[i%len(workloadExprs)]
				res, err := db.Query(doc, expr)
				if err != nil {
					b.Fatal(err)
				}
				for res.Next() {
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	measure := func(db *DB, doc *Document) float64 {
		return float64(testing.Benchmark(loop(db, doc)).NsPerOp())
	}

	// Allocation pin: the observatory's fold must add zero allocations
	// to the warm cache-hit query.
	const expr = "//person/address"
	offAllocs := testing.AllocsPerRun(50, func() {
		res, _ := offDB.Query(offDoc, expr)
		for res.Next() {
		}
	})
	onAllocs := testing.AllocsPerRun(50, func() {
		res, _ := onDB.Query(onDoc, expr)
		for res.Next() {
		}
	})
	t.Logf("warm cache-hit allocs/query: observatory-off %.1f, observatory-on %.1f", offAllocs, onAllocs)
	if onAllocs > offAllocs {
		t.Errorf("cost observatory allocates on the serving path: %.1f > %.1f allocs/query",
			onAllocs, offAllocs)
	}

	measure(onDB, onDoc) // warm-up round, discarded
	const (
		rounds   = 7
		attempts = 3
		budget   = 1.01
	)
	var ratio float64
	for attempt := 1; attempt <= attempts; attempt++ {
		offBest, onBest := math.MaxFloat64, math.MaxFloat64
		var offs, ons []float64
		for i := 0; i < rounds; i++ {
			var off, on float64
			if i%2 == 0 {
				off, on = measure(offDB, offDoc), measure(onDB, onDoc)
			} else {
				on, off = measure(onDB, onDoc), measure(offDB, offDoc)
			}
			offs, ons = append(offs, off), append(ons, on)
			offBest, onBest = min(offBest, off), min(onBest, on)
		}
		ratio = onBest / offBest
		t.Logf("attempt %d: warm serving ns/op observatory-off %v (best %.0f), on %v (best %.0f), best-of-rounds ratio %.3f",
			attempt, offs, offBest, ons, onBest, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("cost-observatory overhead %.1f%% exceeds the 1%% budget on all %d attempts", 100*(ratio-1), attempts)
}
