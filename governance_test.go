package vamana

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vamana/internal/obs"
	"vamana/internal/xmark"
)

// heavyExpr produces a large result set on XMark documents: every name
// element, via an ancestor step that touches many records. Used where a
// query must run long enough for governance to interrupt it.
const heavyExpr = "/descendant::name/parent::*/self::person/address"

// TestQueryContextDeadline is the ISSUE's acceptance scenario: a 1ms
// deadline on a full-size XMark document kills the query in bounded time
// with the engine's typed error, which also satisfies the context-level
// check.
func TestQueryContextDeadline(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.1)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := db.QueryContext(ctx, doc, heavyExpr)
	if err == nil {
		for res.Next() {
		}
		err = res.Err()
	}
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("1ms deadline on a full XMark doc: query finished without error")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v does not satisfy errors.Is(err, context.DeadlineExceeded)", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline enforcement took %v, want bounded time", elapsed)
	}
}

// TestQueryTimeoutOption checks the per-query wall-clock budget without
// any context deadline.
func TestQueryTimeoutOption(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.1)

	res, err := db.QueryContext(context.Background(), doc, heavyExpr,
		WithTimeout(time.Millisecond))
	if err == nil {
		for res.Next() {
		}
		err = res.Err()
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}
}

// TestCancelMidStream starts a streaming query, pulls a few results,
// cancels the context, and checks the iterator stops within one
// amortized check interval, with the canceled error at both levels.
func TestCancelMidStream(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.05)

	canceledBefore := obs.QueriesCanceled.Value()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := db.QueryContext(ctx, doc, heavyExpr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !res.Next() {
			t.Fatalf("query produced only %d results before cancel; need a bigger fixture", i)
		}
	}
	cancel()
	// The executor polls cancellation every 256 units of work (tuples
	// pulled or index entries scanned), so the stream must die well within
	// a few hundred further pulls.
	extra := 0
	for res.Next() {
		if extra++; extra > 1024 {
			t.Fatal("iterator still yielding 1024 results after cancel")
		}
	}
	err = res.Err()
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v does not satisfy errors.Is(err, context.Canceled)", err)
	}
	if got := obs.QueriesCanceled.Value() - canceledBefore; got != 1 {
		t.Errorf("QueriesCanceled advanced by %d, want 1", got)
	}
}

// TestPreCanceledContext checks that a context canceled before the call
// fails fast: no plan compiled, no index touched.
func TestPreCanceledContext(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)

	before := db.StorageMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := db.QueryContext(ctx, doc, "//person/address/city")
	if err == nil {
		res.Close()
		t.Fatal("pre-canceled context: QueryContext succeeded")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrCanceled / context.Canceled", err)
	}
	after := db.StorageMetrics()
	if d := after.Index.Seeks - before.Index.Seeks; d != 0 {
		t.Errorf("pre-canceled query performed %d index seeks, want 0", d)
	}
	if d := after.Pager.Reads - before.Pager.Reads; d != 0 {
		t.Errorf("pre-canceled query read %d pages, want 0", d)
	}
}

// TestBudgetMaxResults checks that exactly MaxResults results stream out
// and materializing the next one fails with the typed budget error.
func TestBudgetMaxResults(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.01)

	budgetBefore := obs.QueriesBudgetExceeded.Value()
	res, err := db.QueryContext(context.Background(), doc, "//person/address",
		WithMaxResults(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for res.Next() {
		n++
	}
	if n != 3 {
		t.Errorf("delivered %d results under WithMaxResults(3), want exactly 3", n)
	}
	err = res.Err()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v is not a *BudgetError", err)
	}
	if be.Budget != "results" || be.Limit != 3 || be.Used != 4 {
		t.Errorf("BudgetError = %+v, want {results 3 4}", be)
	}
	if got := obs.QueriesBudgetExceeded.Value() - budgetBefore; got != 1 {
		t.Errorf("QueriesBudgetExceeded advanced by %d, want 1", got)
	}
}

// TestBudgetMaxDecodedRecords trips the record-decode budget on a query
// whose filters must decode clustered records.
func TestBudgetMaxDecodedRecords(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.01)

	res, err := db.QueryContext(context.Background(), doc, heavyExpr,
		WithMaxDecodedRecords(10))
	if err == nil {
		for res.Next() {
		}
		err = res.Err()
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want a *BudgetError", err)
	}
	if be.Budget != "decoded-records" || be.Limit != 10 {
		t.Errorf("BudgetError = %+v, want budget decoded-records limit 10", be)
	}
}

// TestBudgetMaxPagesRead trips the page-read budget. Page charges happen
// only on node-cache misses, and in-memory stores never evict, so this
// needs a file-backed store with the node cache squeezed to its floor —
// the document's working set then cannot fit and the query must fault
// pages back in.
func TestBudgetMaxPagesRead(t *testing.T) {
	db, err := Open(Options{
		Path:       filepath.Join(t.TempDir(), "governed.vam"),
		CachePages: 1, // floors at 16 nodes per index tree
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("auction",
		xmark.GenerateString(xmark.Config{Factor: 0.02, Seed: 51}))
	if err != nil {
		t.Fatal(err)
	}

	res, err := db.QueryContext(context.Background(), doc, heavyExpr,
		WithMaxPagesRead(2))
	if err == nil {
		for res.Next() {
		}
		err = res.Err()
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want a *BudgetError", err)
	}
	if be.Budget != "pages-read" || be.Limit != 2 {
		t.Errorf("BudgetError = %+v, want budget pages-read limit 2", be)
	}
}

// TestDefaultLimits checks DB-level default budgets apply to every query
// and per-query options override them.
func TestDefaultLimits(t *testing.T) {
	db, err := Open(Options{DefaultLimits: Limits{MaxResults: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	doc := loadAuction(t, db, 0.01)

	// Default applies to the context-free path too.
	res, err := db.Query(doc, "//person/address")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for res.Next() {
		n++
	}
	if n != 2 || !errors.Is(res.Err(), ErrBudgetExceeded) {
		t.Errorf("DB default MaxResults=2: got %d results, err %v", n, res.Err())
	}

	// A per-query option overrides the default field.
	keys, err := func() ([]string, error) {
		r, err := db.QueryContext(context.Background(), doc, "//person/address",
			WithMaxResults(0))
		if err != nil {
			return nil, err
		}
		return r.Keys()
	}()
	if err != nil {
		t.Fatalf("WithMaxResults(0) override: %v", err)
	}
	if len(keys) <= 2 {
		t.Errorf("override delivered %d results, want more than the default cap", len(keys))
	}
}

// TestConcurrentMixedDeadlines runs governed and ungoverned queries
// concurrently: tight-deadline queries must die with the deadline error
// while generous ones finish with full results, uninfluenced.
func TestConcurrentMixedDeadlines(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.05)

	wantKeys, err := func() ([]string, error) {
		r, err := db.Query(doc, heavyExpr)
		if err != nil {
			return nil, err
		}
		return r.Keys()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantKeys) == 0 {
		t.Fatal("fixture produced no results")
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	counts := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var opts []QueryOption
			if i%2 == 1 {
				opts = append(opts, WithTimeout(time.Millisecond))
			}
			res, err := db.QueryContext(context.Background(), doc, heavyExpr, opts...)
			if err != nil {
				errs[i] = err
				return
			}
			for res.Next() {
				counts[i]++
			}
			errs[i] = res.Err()
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i += 2 {
		if errs[i] != nil {
			t.Errorf("generous query %d failed: %v", i, errs[i])
		}
		if counts[i] != len(wantKeys) {
			t.Errorf("generous query %d delivered %d results, want %d", i, counts[i], len(wantKeys))
		}
	}
	for i := 1; i < 8; i += 2 {
		if errs[i] != nil && !errors.Is(errs[i], ErrDeadlineExceeded) {
			t.Errorf("tight query %d failed with %v, want nil or ErrDeadlineExceeded", i, errs[i])
		}
	}
}

// TestErrorTaxonomy checks the non-governance members of the public error
// taxonomy: unknown documents and compile errors.
func TestErrorTaxonomy(t *testing.T) {
	db := openDB(t)

	if _, err := db.Document("nope"); !errors.Is(err, ErrNoSuchDocument) {
		t.Errorf("Document(nope) = %v, want ErrNoSuchDocument", err)
	}
	if err := db.Drop("nope"); !errors.Is(err, ErrNoSuchDocument) {
		t.Errorf("Drop(nope) = %v, want ErrNoSuchDocument", err)
	}

	_, err := db.Compile("//person[")
	if err == nil {
		t.Fatal("Compile of malformed expression succeeded")
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("compile error %v does not unwrap to *SyntaxError", err)
	}
	if se.Expr != "//person[" || se.Pos <= 0 {
		t.Errorf("SyntaxError = %+v, want the offending expression and a real position", se)
	}
}

// TestResultsAll checks the range-over-func iterators: All yields the
// same nodes as the manual loop, surfaces the terminal error as its last
// pair, and closing is implicit and idempotent.
func TestResultsAll(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.01)

	wantKeys, err := func() ([]string, error) {
		r, err := db.Query(doc, "//person/address")
		if err != nil {
			return nil, err
		}
		return r.Keys()
	}()
	if err != nil {
		t.Fatal(err)
	}

	res, err := db.Query(doc, "//person/address")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for n, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, n.Key)
	}
	if len(got) != len(wantKeys) {
		t.Fatalf("All yielded %d nodes, want %d", len(got), len(wantKeys))
	}
	for i := range got {
		if got[i] != wantKeys[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, got[i], wantKeys[i])
		}
	}
	// Exhausted and closed: both iteration styles now yield nothing.
	if res.Next() {
		t.Error("Next on a drained Results returned true")
	}
	for range res.All() {
		t.Error("All on a drained Results yielded")
	}
	if err := res.Close(); err != nil {
		t.Errorf("redundant Close: %v", err)
	}

	// A governance trip surfaces as the final yielded pair.
	res, err = db.QueryContext(context.Background(), doc, "//person/address",
		WithMaxResults(2))
	if err != nil {
		t.Fatal(err)
	}
	var last error
	n := 0
	for node, err := range res.All() {
		if err != nil {
			last = err
		} else {
			n++
			if node.Key == "" {
				t.Error("All yielded an empty node without error")
			}
		}
	}
	if n != 2 {
		t.Errorf("All delivered %d nodes under WithMaxResults(2), want 2", n)
	}
	var be *BudgetError
	if !errors.As(last, &be) {
		t.Errorf("All terminal pair err = %v, want *BudgetError", last)
	}

	// Early break closes the stream.
	res, err = db.Query(doc, "//person/address")
	if err != nil {
		t.Fatal(err)
	}
	for range res.AllKeys() {
		break
	}
	if res.Next() {
		t.Error("Next after breaking out of AllKeys returned true")
	}
}

// TestGovernanceOverheadGate asserts that an active limiter (cancelable
// context plus finite budgets) costs the warm serving path at most 3%
// over the ungoverned fast path (nil limiter).
//
// Methodology: single-goroutine measurement loops, interleaved rounds,
// and a best-of-rounds comparison. On a time-shared machine the noise is
// additive (scheduler preemption, frequency drift, cache pollution from
// neighbors), so the minimum over rounds converges to the true cost of
// each path, while per-round ratios conflate that noise — which swings
// far more than 3% round to round — with the governance delta being
// measured. Skipped unless VAMANA_GOVERNANCE_GATE is set —
// scripts/check.sh runs it.
func TestGovernanceOverheadGate(t *testing.T) {
	if os.Getenv("VAMANA_GOVERNANCE_GATE") == "" {
		t.Skip("set VAMANA_GOVERNANCE_GATE=1 to run the governance-overhead gate")
	}
	db := openDB(t)
	doc := loadAuction(t, db, xmark.FactorForBytes(32<<10))
	for _, expr := range workloadExprs {
		drainCount(t, db, doc, expr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	governedOpts := []QueryOption{
		WithMaxResults(1 << 40),
		WithMaxPagesRead(1 << 40),
		WithMaxDecodedRecords(1 << 40),
	}
	loop := func(governed bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				expr := workloadExprs[i%len(workloadExprs)]
				var res *Results
				var err error
				if governed {
					res, err = db.QueryContext(ctx, doc, expr, governedOpts...)
				} else {
					res, err = db.Query(doc, expr)
				}
				if err != nil {
					b.Fatal(err)
				}
				for res.Next() {
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	measure := func(governed bool) float64 {
		return float64(testing.Benchmark(loop(governed)).NsPerOp())
	}

	measure(true) // warm-up round, discarded
	const (
		rounds   = 7
		attempts = 3
		budget   = 1.03
	)
	// A genuine regression exceeds the budget on every attempt; a noise
	// spike (neighbor stealing the core for one measurement window) does
	// not, so the gate only fails when no attempt comes in under budget.
	var ratio float64
	for attempt := 1; attempt <= attempts; attempt++ {
		offBest, onBest := math.MaxFloat64, math.MaxFloat64
		var offs, ons []float64
		for i := 0; i < rounds; i++ {
			var off, on float64
			if i%2 == 0 {
				off, on = measure(false), measure(true)
			} else {
				on, off = measure(true), measure(false)
			}
			offs, ons = append(offs, off), append(ons, on)
			offBest, onBest = min(offBest, off), min(onBest, on)
		}
		ratio = onBest / offBest
		t.Logf("attempt %d: warm serving ns/op ungoverned %v (best %.0f), governed %v (best %.0f), best-of-rounds ratio %.3f",
			attempt, offs, offBest, ons, onBest, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("governance overhead %.1f%% exceeds the 3%% budget on all %d attempts", 100*(ratio-1), attempts)
}
