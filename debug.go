package vamana

// The live introspection server: /debug/vamana/* JSON endpoints over one
// database, for operators with curl and dashboards that want rates, not
// lifetime totals. Mounted by DebugHandler; cmd/vamana's -metrics-addr
// serves it alongside the Prometheus exposition.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"vamana/internal/obs"
)

// debugRateWindow is the sliding window over which /debug/vamana/metrics
// reports counter rates.
const debugRateWindow = time.Minute

// DebugHandler returns an HTTP handler serving the database's live
// introspection endpoints under the given prefix (conventionally
// "/debug/vamana"):
//
//	<prefix>/metrics    counters, quantiles, and per-second rates over
//	                    the last minute (JSON)
//	<prefix>/slow       the slow-query ring, most recent first
//	<prefix>/traces     the flight recorder; ?format=chrome for Chrome
//	                    trace-event JSON, ?format=text for span trees,
//	                    JSON otherwise; ?n=N limits the count
//	<prefix>/plancache  plan-cache and statistics-memo counters
//	<prefix>/docs       loaded documents with node statistics
//	<prefix>/cost       cost-model observatory: per-class q-error
//	                    profiles and worst offenders; ?format=text for
//	                    the aligned table, JSON otherwise
//	<prefix>/           index page linking every endpoint
//
// The stdlib net/http/pprof handlers are mounted at /debug/pprof/*
// (their conventional path, independent of prefix), so a live server
// can be CPU- and heap-profiled with `go tool pprof` without a restart.
//
// The Prometheus text exposition stays on MetricsHandler; these
// endpoints are JSON for tools and humans, not scrapers. The handler is
// safe for concurrent use and holds no locks between requests.
func (db *DB) DebugHandler(prefix string) http.Handler {
	rates := obs.NewRateWindow(debugRateWindow, func() map[string]uint64 {
		s := obs.Snapshot()
		m := db.StorageMetrics()
		s["vamana_pager_page_reads_total"] = m.Pager.Reads
		s["vamana_pager_page_writes_total"] = m.Pager.Writes
		s["vamana_btree_cache_hits_total"] = m.Index.CacheHits
		s["vamana_btree_cache_misses_total"] = m.Index.CacheMisses
		s["vamana_mass_records_decoded_total"] = m.RecordsDecoded
		return s
	})
	mux := http.NewServeMux()
	mux.HandleFunc(prefix+"/metrics", func(w http.ResponseWriter, r *http.Request) {
		counters := obs.Snapshot()
		perSec, window := rates.Rates()
		writeJSON(w, map[string]any{
			"counters":       counters,
			"storage":        db.StorageMetrics(),
			"rates_per_sec":  perSec,
			"rate_window_ns": window.Nanoseconds(),
		})
	})
	mux.HandleFunc(prefix+"/slow", func(w http.ResponseWriter, r *http.Request) {
		slow := db.SlowQueries()
		// SlowQuery carries an error interface and no JSON tags; render
		// an explicit shape matching the trace exporter's field names.
		type slowEntry struct {
			Expr           string    `json:"expr"`
			Doc            uint64    `json:"doc"`
			Start          time.Time `json:"start"`
			TotalNS        int64     `json:"total_ns"`
			Results        uint64    `json:"results"`
			CacheHit       bool      `json:"cache_hit"`
			PagesRead      uint64    `json:"pages_read"`
			RecordsDecoded uint64    `json:"records_decoded"`
			NodeCacheHits  uint64    `json:"node_cache_hits"`
			TraceID        uint64    `json:"trace_id,omitempty"`
			WorstOp        string    `json:"worst_op,omitempty"`
			WorstQErr      float64   `json:"worst_q_error,omitempty"`
			Err            string    `json:"err,omitempty"`
		}
		out := make([]slowEntry, len(slow))
		for i, sq := range slow {
			out[i] = slowEntry{
				Expr:           sq.Expr,
				Doc:            uint64(sq.Doc),
				Start:          sq.Start,
				TotalNS:        sq.Total.Nanoseconds(),
				Results:        sq.Results,
				CacheHit:       sq.CacheHit,
				PagesRead:      sq.PagesRead,
				RecordsDecoded: sq.RecordsDecoded,
				NodeCacheHits:  sq.NodeCacheHits,
				TraceID:        sq.TraceID,
				WorstOp:        sq.WorstOp,
				WorstQErr:      sq.WorstQErr,
			}
			if sq.Err != nil {
				out[i].Err = sq.Err.Error()
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc(prefix+"/traces", func(w http.ResponseWriter, r *http.Request) {
		traces := db.RecentTraces()
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(traces) {
			traces = traces[:n]
		}
		switch r.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteChromeTrace(w, traces)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, t := range traces {
				_ = t.WriteTree(w)
			}
		default:
			writeJSON(w, traces)
		}
	})
	mux.HandleFunc(prefix+"/plancache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, db.CacheStats())
	})
	mux.HandleFunc(prefix+"/cost", func(w http.ResponseWriter, r *http.Request) {
		p, ok := db.CostProfile()
		if !ok {
			http.Error(w, "cost observatory disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			p.WriteText(w)
			return
		}
		writeJSON(w, p)
	})
	// Debug index: one page linking every endpoint, including the pprof
	// profiles below.
	mux.HandleFunc(prefix+"/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != prefix+"/" && r.URL.Path != prefix {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><head><title>vamana debug</title></head><body><h1>vamana debug</h1><ul>")
		for _, ep := range []struct{ path, desc string }{
			{prefix + "/metrics", "counters, quantiles, per-second rates (JSON)"},
			{prefix + "/slow", "slow-query ring, most recent first"},
			{prefix + "/traces", "flight recorder (?format=chrome|text)"},
			{prefix + "/plancache", "plan-cache and statistics-memo counters"},
			{prefix + "/docs", "loaded documents with node statistics"},
			{prefix + "/cost", "cost-model observatory (?format=text)"},
			{"/debug/pprof/", "runtime profiles (CPU, heap, goroutines, ...)"},
		} {
			fmt.Fprintf(w, "<li><a href=%q>%s</a> — %s</li>", ep.path, ep.path, ep.desc)
		}
		fmt.Fprint(w, "</ul></body></html>")
	})
	// Live profiling: the stdlib pprof handlers at their conventional
	// path, so `go tool pprof http://host/debug/pprof/profile` works
	// against any server that mounted DebugHandler.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc(prefix+"/docs", func(w http.ResponseWriter, r *http.Request) {
		type docEntry struct {
			Name     string `json:"name"`
			Nodes    uint64 `json:"nodes"`
			Elements uint64 `json:"elements"`
			Texts    uint64 `json:"texts"`
		}
		var out []docEntry
		for _, name := range db.Documents() {
			e := docEntry{Name: name}
			if d, err := db.Document(name); err == nil {
				if st, err := d.Stats(); err == nil {
					e.Nodes, e.Elements, e.Texts = st.Nodes, st.Elements, st.Texts
				}
			}
			out = append(out, e)
		}
		writeJSON(w, out)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
