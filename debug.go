package vamana

// The live introspection server: /debug/vamana/* JSON endpoints over one
// database, for operators with curl and dashboards that want rates, not
// lifetime totals. Mounted by DebugHandler; cmd/vamana's -metrics-addr
// serves it alongside the Prometheus exposition.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"vamana/internal/obs"
)

// debugRateWindow is the sliding window over which /debug/vamana/metrics
// reports counter rates.
const debugRateWindow = time.Minute

// DebugHandler returns an HTTP handler serving the database's live
// introspection endpoints under the given prefix (conventionally
// "/debug/vamana"):
//
//	<prefix>/metrics    counters, quantiles, and per-second rates over
//	                    the last minute (JSON)
//	<prefix>/slow       the slow-query ring, most recent first
//	<prefix>/traces     the flight recorder; ?format=chrome for Chrome
//	                    trace-event JSON, ?format=text for span trees,
//	                    JSON otherwise; ?n=N limits the count
//	<prefix>/plancache  plan-cache and statistics-memo counters
//	<prefix>/docs       loaded documents with node statistics
//
// The Prometheus text exposition stays on MetricsHandler; these
// endpoints are JSON for tools and humans, not scrapers. The handler is
// safe for concurrent use and holds no locks between requests.
func (db *DB) DebugHandler(prefix string) http.Handler {
	rates := obs.NewRateWindow(debugRateWindow, func() map[string]uint64 {
		s := obs.Snapshot()
		m := db.StorageMetrics()
		s["vamana_pager_page_reads_total"] = m.Pager.Reads
		s["vamana_pager_page_writes_total"] = m.Pager.Writes
		s["vamana_btree_cache_hits_total"] = m.Index.CacheHits
		s["vamana_btree_cache_misses_total"] = m.Index.CacheMisses
		s["vamana_mass_records_decoded_total"] = m.RecordsDecoded
		return s
	})
	mux := http.NewServeMux()
	mux.HandleFunc(prefix+"/metrics", func(w http.ResponseWriter, r *http.Request) {
		counters := obs.Snapshot()
		perSec, window := rates.Rates()
		writeJSON(w, map[string]any{
			"counters":       counters,
			"storage":        db.StorageMetrics(),
			"rates_per_sec":  perSec,
			"rate_window_ns": window.Nanoseconds(),
		})
	})
	mux.HandleFunc(prefix+"/slow", func(w http.ResponseWriter, r *http.Request) {
		slow := db.SlowQueries()
		// SlowQuery carries an error interface and no JSON tags; render
		// an explicit shape matching the trace exporter's field names.
		type slowEntry struct {
			Expr           string    `json:"expr"`
			Doc            uint64    `json:"doc"`
			Start          time.Time `json:"start"`
			TotalNS        int64     `json:"total_ns"`
			Results        uint64    `json:"results"`
			CacheHit       bool      `json:"cache_hit"`
			PagesRead      uint64    `json:"pages_read"`
			RecordsDecoded uint64    `json:"records_decoded"`
			NodeCacheHits  uint64    `json:"node_cache_hits"`
			TraceID        uint64    `json:"trace_id,omitempty"`
			Err            string    `json:"err,omitempty"`
		}
		out := make([]slowEntry, len(slow))
		for i, sq := range slow {
			out[i] = slowEntry{
				Expr:           sq.Expr,
				Doc:            uint64(sq.Doc),
				Start:          sq.Start,
				TotalNS:        sq.Total.Nanoseconds(),
				Results:        sq.Results,
				CacheHit:       sq.CacheHit,
				PagesRead:      sq.PagesRead,
				RecordsDecoded: sq.RecordsDecoded,
				NodeCacheHits:  sq.NodeCacheHits,
				TraceID:        sq.TraceID,
			}
			if sq.Err != nil {
				out[i].Err = sq.Err.Error()
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc(prefix+"/traces", func(w http.ResponseWriter, r *http.Request) {
		traces := db.RecentTraces()
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(traces) {
			traces = traces[:n]
		}
		switch r.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteChromeTrace(w, traces)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, t := range traces {
				_ = t.WriteTree(w)
			}
		default:
			writeJSON(w, traces)
		}
	})
	mux.HandleFunc(prefix+"/plancache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, db.CacheStats())
	})
	mux.HandleFunc(prefix+"/docs", func(w http.ResponseWriter, r *http.Request) {
		type docEntry struct {
			Name     string `json:"name"`
			Nodes    uint64 `json:"nodes"`
			Elements uint64 `json:"elements"`
			Texts    uint64 `json:"texts"`
		}
		var out []docEntry
		for _, name := range db.Documents() {
			e := docEntry{Name: name}
			if d, err := db.Document(name); err == nil {
				if st, err := d.Stats(); err == nil {
					e.Nodes, e.Elements, e.Texts = st.Nodes, st.Elements, st.Texts
				}
			}
			out = append(out, e)
		}
		writeJSON(w, out)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
