package vamana_test

// The benchmarks in this file regenerate the paper's evaluation (§VIII):
// one benchmark per figure, with sub-benchmarks per document size and
// engine. Figures 12-16 plot the execution time of queries Q1-Q5 on
// Galax, Jaxen, eXist, VQP (default VAMANA plan) and VQP-OPT (cost-driven
// optimized plan) across XMark document sizes.
//
// Default sizes are kept small so `go test -bench=.` completes quickly;
// set VAMANA_BENCH_MB (e.g. "1,5,10,20,30") to reproduce the paper's full
// sweep. cmd/vbench prints the same data as figure-style series tables.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vamana"
	"vamana/internal/bench"
	"vamana/internal/cost"
	"vamana/internal/exec"
	"vamana/internal/mass"
	"vamana/internal/opt"
	"vamana/internal/plan"
	"vamana/internal/xpath"
)

func benchSizesMB() []int {
	if env := os.Getenv("VAMANA_BENCH_MB"); env != "" {
		var out []int
		for _, part := range strings.Split(env, ",") {
			if n, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && n > 0 {
				out = append(out, n)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return []int{1, 4}
}

var (
	fixMu    sync.Mutex
	fixtures = map[int]*bench.Fixture{}
)

func fixtureMB(b *testing.B, mb int) *bench.Fixture {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixtures[mb]; ok {
		return f
	}
	f, err := bench.NewFixture(mb<<20, 71, false)
	if err != nil {
		b.Fatal(err)
	}
	fixtures[mb] = f
	return f
}

// benchFigure runs one paper figure: a query across sizes and engines.
func benchFigure(b *testing.B, queryID string) {
	q, ok := bench.QueryByID(queryID)
	if !ok {
		b.Fatalf("unknown query %s", queryID)
	}
	for _, mb := range benchSizesMB() {
		f := fixtureMB(b, mb)
		for _, e := range bench.AllEngines {
			b.Run(fmt.Sprintf("size=%dMB/engine=%s", mb, e), func(b *testing.B) {
				// Warm engine caches (DOM builds, indexes) outside the
				// timed region, and surface unsupported configurations
				// as skips — the paper's charts show these as missing
				// data points.
				if r := f.Run(e, q); r.Err != nil {
					b.Skipf("%s cannot run %s: %v", e, q.ID, r.Err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := f.Run(e, q)
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12 reproduces Figure 12: execution time of Q1
// //person/address.
func BenchmarkFig12(b *testing.B) { benchFigure(b, "Q1") }

// BenchmarkFig13 reproduces Figure 13: execution time of Q2
// //watches/watch/ancestor::person.
func BenchmarkFig13(b *testing.B) { benchFigure(b, "Q2") }

// BenchmarkFig14 reproduces Figure 14: execution time of Q3
// /descendant::name/parent::*/self::person/address (the VQP vs VQP-OPT
// emphasis figure).
func BenchmarkFig14(b *testing.B) { benchFigure(b, "Q3") }

// BenchmarkFig15 reproduces Figure 15: execution time of Q4
// //itemref/following-sibling::price/parent::* (Galax and eXist lack the
// axis and appear as skips).
func BenchmarkFig15(b *testing.B) { benchFigure(b, "Q4") }

// BenchmarkFig16 reproduces Figure 16: execution time of Q5
// //province[text()='Vermont']/ancestor::person (the value-predicate
// query where eXist pays its traversal fallback).
func BenchmarkFig16(b *testing.B) { benchFigure(b, "Q5") }

// BenchmarkOptimizerOverhead measures the cost of cost-driven
// optimization itself (compile + statistics probes + rewriting), which
// the paper reports as negligible next to execution time.
func BenchmarkOptimizerOverhead(b *testing.B) {
	for _, mb := range benchSizesMB() {
		f := fixtureMB(b, mb)
		eng, doc := f.VamanaEngine()
		for _, q := range bench.Queries {
			b.Run(fmt.Sprintf("size=%dMB/%s", mb, q.ID), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eng.CompileOptimized(doc, q.XPath); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblation isolates each optimizer feature: the full rule
// library against versions with one rule class removed, plus cleanup-only
// — the design-choice ablations called out in DESIGN.md.
func BenchmarkAblation(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	eng, doc := f.VamanaEngine()
	store := eng.Store()

	variants := []struct {
		name  string
		rules func() []opt.Rule
	}{
		{"full", opt.Library},
		{"no-value-index", func() []opt.Rule { return dropRule(opt.Library(), "value-index") }},
		{"no-pushdown", func() []opt.Rule { return dropRule(opt.Library(), "child-pushdown") }},
		{"no-inversion", func() []opt.Rule { return dropRule(opt.Library(), "parent-inversion") }},
		{"cleanup-only", func() []opt.Rule { return []opt.Rule{} }},
	}
	for _, q := range bench.Queries {
		for _, v := range variants {
			b.Run(q.ID+"/"+v.name, func(b *testing.B) {
				p := mustPlan(b, q.XPath)
				rules := v.rules()
				o := &opt.Optimizer{Store: store, Doc: doc, Rules: rules}
				if len(rules) == 0 {
					o.MaxIterations = 1
				}
				optimized, err := o.Optimize(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					it, err := exec.Run(optimized, exec.Context{Store: store, Doc: doc})
					if err != nil {
						b.Fatal(err)
					}
					for it.Next() {
					}
					if it.Err() != nil {
						b.Fatal(it.Err())
					}
				}
			})
		}
	}
}

func dropRule(rules []opt.Rule, name string) []opt.Rule {
	out := rules[:0:0]
	for _, r := range rules {
		if r.Name != name {
			out = append(out, r)
		}
	}
	return out
}

func mustPlan(b *testing.B, expr string) *plan.Plan {
	b.Helper()
	ast, err := xpath.Parse(expr)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAllocs measures allocations per executed query for the paper's
// workload Q1-Q5, compiling once outside the loop so the numbers isolate
// the execution hot path (index scans, cursor movement, key decoding).
// Before/after numbers for the allocation-reduction work are recorded in
// EXPERIMENTS.md.
func BenchmarkAllocs(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	eng, doc := f.VamanaEngine()
	store := eng.Store()
	for _, q := range bench.Queries {
		b.Run(q.ID, func(b *testing.B) {
			cq, err := eng.CompileOptimized(doc, q.XPath)
			if err != nil {
				b.Fatal(err)
			}
			p := cq.Plan()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it, err := exec.Run(p, exec.Context{Store: store, Doc: doc})
				if err != nil {
					b.Fatal(err)
				}
				for it.Next() {
				}
				if it.Err() != nil {
					b.Fatal(it.Err())
				}
			}
		})
	}
}

// BenchmarkServing measures the query-serving fast path: GOMAXPROCS
// goroutines each issuing repeated Q1-Q5 against one database. mode=cached
// goes through DB.Query (plan cache + statistics memo, the steady state of
// a serving process); mode=compile-per-call pays parse + optimize with
// statistics probes against the live B+-trees on every call — what each
// query cost before the serving fast path existed. Results, including the
// throughput ratio, are written to BENCH_serving.json.
func BenchmarkServing(b *testing.B) {
	// A small document keeps per-query execution time small enough that
	// the compile overhead — the thing the plan cache removes — dominates
	// the uncached mode, which is the regime where serving caches matter.
	const servingKB = 32
	type modeResult struct {
		NsPerOp    float64 `json:"ns_per_op"`
		QueriesSec float64 `json:"queries_per_sec"`
		Ops        int     `json:"ops"`
	}
	report := struct {
		Benchmark  string                `json:"benchmark"`
		DocKB      int                   `json:"doc_kb"`
		Goroutines int                   `json:"goroutines"`
		Queries    []string              `json:"queries"`
		Modes      map[string]modeResult `json:"modes"`
		Speedup    float64               `json:"speedup_cached_vs_compile"`
	}{
		Benchmark:  "BenchmarkServing",
		DocKB:      servingKB,
		Goroutines: runtime.GOMAXPROCS(0),
		Modes:      map[string]modeResult{},
	}
	for _, q := range bench.Queries {
		report.Queries = append(report.Queries, q.ID)
	}
	sf, err := bench.NewFixture(servingKB<<10, 71, false)
	if err != nil {
		b.Fatal(err)
	}
	defer sf.Close()
	src := sf.Source()

	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("auction", src)
	if err != nil {
		b.Fatal(err)
	}
	// Warm: the first call per expression compiles; serving throughput is
	// the steady state after that.
	for _, q := range bench.Queries {
		if _, err := db.Query(doc, q.XPath); err != nil {
			b.Fatal(err)
		}
	}

	// The compile-per-call baseline is what every DB.Query cost before the
	// serving fast path existed: parse, build, optimize with statistics
	// probes against the live B+-trees (no plan cache, no probe memo),
	// then execute.
	eng, docID := sf.VamanaEngine()
	store := eng.Store()
	compileAndRun := func(expr string) error {
		ast, err := xpath.Parse(expr)
		if err != nil {
			return err
		}
		p, err := plan.Build(ast)
		if err != nil {
			return err
		}
		o := &opt.Optimizer{Store: store, Doc: docID}
		optimized, err := o.Optimize(p)
		if err != nil {
			return err
		}
		it, err := exec.Run(optimized, exec.Context{Store: store, Doc: docID})
		if err != nil {
			return err
		}
		for it.Next() {
		}
		return it.Err()
	}

	modes := []struct {
		name  string
		serve func(q bench.Query) error
	}{
		{"cached", func(q bench.Query) error {
			res, err := db.Query(doc, q.XPath)
			if err != nil {
				return err
			}
			for res.Next() {
			}
			return res.Err()
		}},
		{"compile-per-call", func(q bench.Query) error {
			return compileAndRun(q.XPath)
		}},
	}
	for _, m := range modes {
		b.Run("mode="+m.name, func(b *testing.B) {
			serve := m.serve
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := bench.Queries[i%len(bench.Queries)]
					i++
					if err := serve(q); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			report.Modes[m.name] = modeResult{
				NsPerOp:    ns,
				QueriesSec: 1e9 / ns,
				Ops:        b.N,
			}
		})
	}

	cached, okC := report.Modes["cached"]
	uncached, okU := report.Modes["compile-per-call"]
	if okC && okU && cached.NsPerOp > 0 {
		report.Speedup = uncached.NsPerOp / cached.NsPerOp
		b.Logf("serving speedup (cached vs compile-per-call): %.1fx", report.Speedup)
		// Smoke runs (-benchtime 1x) produce single-iteration noise; only
		// overwrite the recorded results when the run actually measured.
		if cached.Ops < 100 || uncached.Ops < 100 {
			b.Logf("too few iterations to record; BENCH_serving.json left untouched")
			return
		}
		raw, err := json.Marshal(report)
		if err != nil {
			b.Fatal(err)
		}
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(raw, &fields); err != nil {
			b.Fatal(err)
		}
		mergeBenchServing(b, fields)
	}
}

// mergeBenchServing folds fields into BENCH_serving.json, keeping
// whatever other top-level keys are already recorded there — so
// BenchmarkServing and BenchmarkServingBatch can each refresh their own
// section without clobbering the other's.
func mergeBenchServing(b *testing.B, fields map[string]json.RawMessage) {
	b.Helper()
	merged := map[string]json.RawMessage{}
	if data, err := os.ReadFile("BENCH_serving.json"); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			b.Logf("BENCH_serving.json unreadable (%v); rewriting from scratch", err)
			merged = map[string]json.RawMessage{}
		}
	}
	for k, v := range fields {
		merged[k] = v
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serving.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServingBatch sweeps the executor pull-batch size over the
// paper workload: each sub-benchmark serves one query shape through
// DB.Query against a database opened with that ExecBatchSize, so the
// series isolates what vectorized batch-at-a-time execution buys over
// the tuple-at-a-time degenerate case (batch=1, the pre-batching
// executor's pull discipline). The shapes cover three regimes on a 1 MB
// document: the full paper workload Q1-Q5 (mixed scan/join cost),
// scan-heavy drains where per-tuple delivery dominates and batching
// pays, and selective shapes — an existential-predicate query whose
// probes demand one tuple at every pipeline level, and a first-match
// consumer that abandons the stream after one result — that pin down
// that batching must not over-pull under early termination. Results
// land in BENCH_serving.json under "batch_sweep".
func BenchmarkServingBatch(b *testing.B) {
	const docMB = 1
	batches := []int{1, 16, 64, 128, 256}
	type shape struct {
		name      string
		expr      string
		scanHeavy bool
		firstOnly bool
	}
	var shapes []shape
	for _, q := range bench.Queries {
		shapes = append(shapes, shape{name: q.ID, expr: q.XPath})
	}
	shapes = append(shapes,
		// Scan drains: cost is the index range scan plus per-tuple
		// delivery — the work batched pulls amortize. These are the
		// shapes the check.sh throughput gate holds at >= 1.5x.
		shape{name: "scan-name", expr: "//name", scanHeavy: true},
		shape{name: "scan-person", expr: "//person", scanHeavy: true},
		shape{name: "scan-address", expr: "//person/address", scanHeavy: true},
		shape{name: "scan-path", expr: "/site/people/person", scanHeavy: true},
		// Selective shapes: batching must not over-pull under early
		// termination or one-tuple-per-probe demand.
		shape{name: "exists", expr: "//person[address][watches]"},
		shape{name: "first-match", expr: "//person/address", firstOnly: true},
	)

	src := fixtureMB(b, docMB).Source()
	dbs := map[int]*vamana.DB{}
	docs := map[int]*vamana.Document{}
	for _, batch := range batches {
		db, err := vamana.Open(vamana.Options{ExecBatchSize: batch})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		doc, err := db.LoadXMLString("auction", src)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range shapes {
			if _, err := db.Query(doc, s.expr); err != nil {
				b.Fatal(err)
			}
		}
		dbs[batch], docs[batch] = db, doc
	}

	type point struct {
		NsPerOp float64 `json:"ns_per_op"`
		Ops     int     `json:"ops"`
	}
	sweep := struct {
		DocMB   int                         `json:"doc_mb"`
		Batches []int                       `json:"batches"`
		Shapes  map[string]map[string]point `json:"shapes"`
		// ScanHeavySpeedup is the geometric mean over the scan-drain
		// shapes of ns(batch=1)/ns(batch=128).
		ScanHeavySpeedup float64 `json:"scan_heavy_speedup_128_vs_1"`
	}{DocMB: docMB, Batches: batches, Shapes: map[string]map[string]point{}}

	for _, s := range shapes {
		sweep.Shapes[s.name] = map[string]point{}
		for _, batch := range batches {
			db, doc := dbs[batch], docs[batch]
			b.Run(fmt.Sprintf("shape=%s/batch=%d", s.name, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := db.Query(doc, s.expr)
					if err != nil {
						b.Fatal(err)
					}
					if s.firstOnly {
						res.Next()
					} else {
						for res.Next() {
						}
					}
					if err := res.Err(); err != nil {
						b.Fatal(err)
					}
					res.Close()
				}
				// The ramp invokes this body several times with growing
				// b.N; the final (largest) invocation's numbers win.
				ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				sweep.Shapes[s.name][strconv.Itoa(batch)] = point{NsPerOp: ns, Ops: b.N}
			})
		}
	}

	// Gate the write on the final per-point iteration counts — a filtered
	// or 1x run must not overwrite the recorded sweep with noise.
	minOps, nPoints := 1<<62, 0
	for _, pts := range sweep.Shapes {
		for _, p := range pts {
			nPoints++
			if p.Ops < minOps {
				minOps = p.Ops
			}
		}
	}
	if nPoints < len(shapes)*len(batches) {
		minOps = 0 // filtered run: some points never executed
	}

	logProduct, nScan := 0.0, 0
	for _, s := range shapes {
		if !s.scanHeavy {
			continue
		}
		one, def := sweep.Shapes[s.name]["1"], sweep.Shapes[s.name]["128"]
		if one.NsPerOp > 0 && def.NsPerOp > 0 {
			speedup := one.NsPerOp / def.NsPerOp
			b.Logf("%s: batch=128 is %.2fx batch=1 (%.0f ns vs %.0f ns)", s.name, speedup, def.NsPerOp, one.NsPerOp)
			logProduct += math.Log(speedup)
			nScan++
		}
	}
	if nScan > 0 {
		sweep.ScanHeavySpeedup = math.Exp(logProduct / float64(nScan))
		b.Logf("scan-heavy geomean speedup (batch=128 vs batch=1): %.2fx", sweep.ScanHeavySpeedup)
	}
	if minOps < 20 {
		b.Logf("too few iterations to record; BENCH_serving.json left untouched")
		return
	}
	raw, err := json.Marshal(sweep)
	if err != nil {
		b.Fatal(err)
	}
	mergeBenchServing(b, map[string]json.RawMessage{"batch_sweep": raw})
}

// BenchmarkCostEstimation measures a full plan estimation — a handful of
// O(log n) counted-index probes.
func BenchmarkCostEstimation(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	eng, doc := f.VamanaEngine()
	store := eng.Store()
	for _, q := range bench.Queries {
		b.Run(q.ID, func(b *testing.B) {
			p := mustPlan(b, q.XPath)
			opt.Cleanup(p)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				est := &cost.Estimator{Store: store, Doc: doc}
				if err := est.Estimate(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStatisticsProbes times the MASS counting primitives
// underpinning the cost model.
func BenchmarkStatisticsProbes(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	eng, doc := f.VamanaEngine()
	store := eng.Store()
	b.Run("CountName", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := store.CountName(doc, "person"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TextCount", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := store.TextCount(doc, "Yung Flach", ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoad measures streaming document load+index throughput.
func BenchmarkLoad(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	src := f.Source()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		s, err := mass.Open(mass.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.LoadDocument("auction", strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
