package vamana_test

// The benchmarks in this file regenerate the paper's evaluation (§VIII):
// one benchmark per figure, with sub-benchmarks per document size and
// engine. Figures 12-16 plot the execution time of queries Q1-Q5 on
// Galax, Jaxen, eXist, VQP (default VAMANA plan) and VQP-OPT (cost-driven
// optimized plan) across XMark document sizes.
//
// Default sizes are kept small so `go test -bench=.` completes quickly;
// set VAMANA_BENCH_MB (e.g. "1,5,10,20,30") to reproduce the paper's full
// sweep. cmd/vbench prints the same data as figure-style series tables.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vamana/internal/bench"
	"vamana/internal/cost"
	"vamana/internal/exec"
	"vamana/internal/mass"
	"vamana/internal/opt"
	"vamana/internal/plan"
	"vamana/internal/xpath"
)

func benchSizesMB() []int {
	if env := os.Getenv("VAMANA_BENCH_MB"); env != "" {
		var out []int
		for _, part := range strings.Split(env, ",") {
			if n, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && n > 0 {
				out = append(out, n)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return []int{1, 4}
}

var (
	fixMu    sync.Mutex
	fixtures = map[int]*bench.Fixture{}
)

func fixtureMB(b *testing.B, mb int) *bench.Fixture {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixtures[mb]; ok {
		return f
	}
	f, err := bench.NewFixture(mb<<20, 71, false)
	if err != nil {
		b.Fatal(err)
	}
	fixtures[mb] = f
	return f
}

// benchFigure runs one paper figure: a query across sizes and engines.
func benchFigure(b *testing.B, queryID string) {
	q, ok := bench.QueryByID(queryID)
	if !ok {
		b.Fatalf("unknown query %s", queryID)
	}
	for _, mb := range benchSizesMB() {
		f := fixtureMB(b, mb)
		for _, e := range bench.AllEngines {
			b.Run(fmt.Sprintf("size=%dMB/engine=%s", mb, e), func(b *testing.B) {
				// Warm engine caches (DOM builds, indexes) outside the
				// timed region, and surface unsupported configurations
				// as skips — the paper's charts show these as missing
				// data points.
				if r := f.Run(e, q); r.Err != nil {
					b.Skipf("%s cannot run %s: %v", e, q.ID, r.Err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := f.Run(e, q)
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			})
		}
	}
}

// BenchmarkFig12 reproduces Figure 12: execution time of Q1
// //person/address.
func BenchmarkFig12(b *testing.B) { benchFigure(b, "Q1") }

// BenchmarkFig13 reproduces Figure 13: execution time of Q2
// //watches/watch/ancestor::person.
func BenchmarkFig13(b *testing.B) { benchFigure(b, "Q2") }

// BenchmarkFig14 reproduces Figure 14: execution time of Q3
// /descendant::name/parent::*/self::person/address (the VQP vs VQP-OPT
// emphasis figure).
func BenchmarkFig14(b *testing.B) { benchFigure(b, "Q3") }

// BenchmarkFig15 reproduces Figure 15: execution time of Q4
// //itemref/following-sibling::price/parent::* (Galax and eXist lack the
// axis and appear as skips).
func BenchmarkFig15(b *testing.B) { benchFigure(b, "Q4") }

// BenchmarkFig16 reproduces Figure 16: execution time of Q5
// //province[text()='Vermont']/ancestor::person (the value-predicate
// query where eXist pays its traversal fallback).
func BenchmarkFig16(b *testing.B) { benchFigure(b, "Q5") }

// BenchmarkOptimizerOverhead measures the cost of cost-driven
// optimization itself (compile + statistics probes + rewriting), which
// the paper reports as negligible next to execution time.
func BenchmarkOptimizerOverhead(b *testing.B) {
	for _, mb := range benchSizesMB() {
		f := fixtureMB(b, mb)
		eng, doc := f.VamanaEngine()
		for _, q := range bench.Queries {
			b.Run(fmt.Sprintf("size=%dMB/%s", mb, q.ID), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eng.CompileOptimized(doc, q.XPath); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblation isolates each optimizer feature: the full rule
// library against versions with one rule class removed, plus cleanup-only
// — the design-choice ablations called out in DESIGN.md.
func BenchmarkAblation(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	eng, doc := f.VamanaEngine()
	store := eng.Store()

	variants := []struct {
		name  string
		rules func() []opt.Rule
	}{
		{"full", opt.Library},
		{"no-value-index", func() []opt.Rule { return dropRule(opt.Library(), "value-index") }},
		{"no-pushdown", func() []opt.Rule { return dropRule(opt.Library(), "child-pushdown") }},
		{"no-inversion", func() []opt.Rule { return dropRule(opt.Library(), "parent-inversion") }},
		{"cleanup-only", func() []opt.Rule { return []opt.Rule{} }},
	}
	for _, q := range bench.Queries {
		for _, v := range variants {
			b.Run(q.ID+"/"+v.name, func(b *testing.B) {
				p := mustPlan(b, q.XPath)
				rules := v.rules()
				o := &opt.Optimizer{Store: store, Doc: doc, Rules: rules}
				if len(rules) == 0 {
					o.MaxIterations = 1
				}
				optimized, err := o.Optimize(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					it, err := exec.Run(optimized, exec.Context{Store: store, Doc: doc})
					if err != nil {
						b.Fatal(err)
					}
					for it.Next() {
					}
					if it.Err() != nil {
						b.Fatal(it.Err())
					}
				}
			})
		}
	}
}

func dropRule(rules []opt.Rule, name string) []opt.Rule {
	out := rules[:0:0]
	for _, r := range rules {
		if r.Name != name {
			out = append(out, r)
		}
	}
	return out
}

func mustPlan(b *testing.B, expr string) *plan.Plan {
	b.Helper()
	ast, err := xpath.Parse(expr)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(ast)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkCostEstimation measures a full plan estimation — a handful of
// O(log n) counted-index probes.
func BenchmarkCostEstimation(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	eng, doc := f.VamanaEngine()
	store := eng.Store()
	for _, q := range bench.Queries {
		b.Run(q.ID, func(b *testing.B) {
			p := mustPlan(b, q.XPath)
			opt.Cleanup(p)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				est := &cost.Estimator{Store: store, Doc: doc}
				if err := est.Estimate(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStatisticsProbes times the MASS counting primitives
// underpinning the cost model.
func BenchmarkStatisticsProbes(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	eng, doc := f.VamanaEngine()
	store := eng.Store()
	b.Run("CountName", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := store.CountName(doc, "person"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TextCount", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := store.TextCount(doc, "Yung Flach", ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoad measures streaming document load+index throughput.
func BenchmarkLoad(b *testing.B) {
	f := fixtureMB(b, benchSizesMB()[0])
	src := f.Source()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		s, err := mass.Open(mass.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.LoadDocument("auction", strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
