package vamana

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vamana/internal/plan"
)

// traceOne runs expr through the serving path on a flight-recorded DB
// and returns its newest trace.
func traceOne(t *testing.T, db *DB, doc *Document, expr string) *QueryTrace {
	t.Helper()
	drainCount(t, db, doc, expr)
	traces := db.RecentTraces()
	if len(traces) == 0 {
		t.Fatalf("no trace recorded for %s", expr)
	}
	tr := traces[0]
	if tr.Expr != expr {
		t.Fatalf("newest trace is %q, want %q", tr.Expr, expr)
	}
	return tr
}

// TestSpanTreeInvariants runs the paper's workload queries Q1-Q5 on a
// flight-recorded database and checks the structural invariants of each
// recorded span tree: children nest within their parents' intervals,
// rows-out of a context child equals rows-in of its parent step, the
// root's output equals the query's result count, and the per-operator
// estimates embedded in the spans match a fresh Estimate of the same
// expression.
func TestSpanTreeInvariants(t *testing.T) {
	db, err := Open(Options{FlightRecorderSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.01)

	for i, expr := range workloadExprs {
		tr := traceOne(t, db, doc, expr)
		if tr.Root == nil {
			t.Fatalf("Q%d: trace has no span tree", i+1)
		}
		if tr.Root.StartNS != 0 || tr.Root.EndNS <= 0 {
			t.Errorf("Q%d: root span [%d,%d] should cover the run from 0", i+1, tr.Root.StartNS, tr.Root.EndNS)
		}
		if tr.Root.Out != tr.Results {
			t.Errorf("Q%d: root span out=%d, trace results=%d", i+1, tr.Root.Out, tr.Results)
		}

		// Nesting: every child interval lies within its parent's.
		var checkNest func(s *Span)
		checkNest = func(s *Span) {
			if s.EndNS < s.StartNS {
				t.Errorf("Q%d: span %s ends before it starts [%d,%d]", i+1, s.Name, s.StartNS, s.EndNS)
			}
			for _, c := range s.Children {
				if c.StartNS < s.StartNS || c.EndNS > s.EndNS {
					t.Errorf("Q%d: span %s [%d,%d] escapes parent %s [%d,%d]",
						i+1, c.Name, c.StartNS, c.EndNS, s.Name, s.StartNS, s.EndNS)
				}
				checkNest(c)
			}
		}
		checkNest(tr.Root)

		// Context chain: each step consumes exactly what its context
		// child produced. The chain is the first-child path of axis
		// spans below the root (predicate subtrees are "pred" spans).
		cur := tr.Root
		for len(cur.Children) > 0 && cur.Children[0].Kind == "axis" {
			child := cur.Children[0]
			if cur.Kind == "axis" && cur.In != child.Out {
				t.Errorf("Q%d: step %s in=%d != context child %s out=%d",
					i+1, cur.Name, cur.In, child.Name, child.Out)
			}
			cur = child
		}

		// Estimates: the spans carry the executed (cached, optimized)
		// plan's cost annotations; a fresh Estimate of the same compiled
		// query against the same statistics must agree operator by
		// operator.
		q, err := db.CompileOptimized(doc, expr)
		if err != nil {
			t.Fatalf("Q%d compile: %v", i+1, err)
		}
		p, err := q.q.Estimate(doc.id)
		if err != nil {
			t.Fatalf("Q%d estimate: %v", i+1, err)
		}
		var spans []*Span
		var flatten func(s *Span)
		flatten = func(s *Span) {
			spans = append(spans, s)
			for _, c := range s.Children {
				flatten(c)
			}
		}
		flatten(tr.Root)
		ops := p.Operators()
		if len(ops) != len(spans) {
			t.Fatalf("Q%d: %d spans for %d plan operators", i+1, len(spans), len(ops))
		}
		for j, op := range ops {
			sp := spans[j]
			if sp.Name != op.Label() {
				t.Errorf("Q%d op %d: span %q, plan operator %q", i+1, j, sp.Name, op.Label())
				continue
			}
			c := *plan.CostOf(op)
			if !sp.Estimated || sp.EstIn != c.In || sp.EstOut != c.Out {
				t.Errorf("Q%d %s: span est in=%d out=%d (estimated=%v), Estimate says in=%d out=%d",
					i+1, sp.Name, sp.EstIn, sp.EstOut, sp.Estimated, c.In, c.Out)
			}
		}
	}
}

// TestFlightRecorderConcurrent hammers the recorder from writer
// goroutines (queries) while readers snapshot and walk the traces —
// meaningful under -race.
func TestFlightRecorderConcurrent(t *testing.T) {
	db, err := Open(Options{FlightRecorderSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)
	drainCount(t, db, doc, "//person/address") // warm the plan cache

	const writers, readers, iters = 4, 2, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				expr := workloadExprs[(w+i)%len(workloadExprs)]
				res, err := db.Query(doc, expr)
				if err != nil {
					errs <- err
					return
				}
				for res.Next() {
				}
				if err := res.Err(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, tr := range db.RecentTraces() {
					var walk func(s *Span) int64
					walk = func(s *Span) int64 {
						d := s.EndNS - s.StartNS
						for _, c := range s.Children {
							d += walk(c)
						}
						return d
					}
					_ = walk(tr.Root)
					var buf bytes.Buffer
					_ = tr.WriteTree(&buf)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	traces := db.RecentTraces()
	if len(traces) != 8 {
		t.Fatalf("recorder holds %d traces, want 8 (full ring)", len(traces))
	}
	for _, tr := range traces {
		if tr.Root == nil || tr.Results == 0 {
			t.Errorf("incomplete recorded trace: %+v", tr)
		}
	}
}

// TestSlowQueryStorageDeltas drives the slow threshold to 1ns so every
// query lands in the ring, and checks that entries carry per-query
// storage consumption and that the log line includes it.
func TestSlowQueryStorageDeltas(t *testing.T) {
	var buf bytes.Buffer
	db, err := Open(Options{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       &buf,
		FlightRecorderSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)

	for _, expr := range workloadExprs {
		drainCount(t, db, doc, expr)
	}
	slow := db.SlowQueries()
	if len(slow) < len(workloadExprs) {
		t.Fatalf("got %d slow entries, want >= %d", len(slow), len(workloadExprs))
	}
	var anyRecords bool
	for _, sq := range slow[:len(workloadExprs)] {
		// Index traversal always touches B+-tree nodes; in-memory stores
		// read no pages, so cache hits are the reliable signal.
		if sq.NodeCacheHits == 0 {
			t.Errorf("slow entry %q has zero node-cache hits: %+v", sq.Expr, sq)
		}
		if sq.TraceID == 0 {
			t.Errorf("slow entry %q carries no trace id (flight recorder is on)", sq.Expr)
		}
		anyRecords = anyRecords || sq.RecordsDecoded > 0
	}
	if !anyRecords {
		t.Error("no slow entry recorded decoded records across Q1-Q5")
	}
	line := buf.String()
	for _, want := range []string{"pages=", "records=", "cachehits="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line missing %q:\n%s", want, line)
		}
	}
}

// TestDebugEndpoints exercises every /debug/vamana endpoint over
// httptest and checks the JSON shapes.
func TestDebugEndpoints(t *testing.T) {
	db, err := Open(Options{
		SlowQueryThreshold: time.Nanosecond,
		FlightRecorderSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc := loadAuction(t, db, 0.003)
	drainCount(t, db, doc, "//person/address")
	drainCount(t, db, doc, "//person/address")

	h := db.DebugHandler("/debug/vamana")
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec
	}

	var metrics struct {
		Counters    map[string]uint64  `json:"counters"`
		RatesPerSec map[string]float64 `json:"rates_per_sec"`
	}
	if err := json.Unmarshal(get("/debug/vamana/metrics").Body.Bytes(), &metrics); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if metrics.Counters["vamana_exec_runs_total"] == 0 {
		t.Error("metrics counters missing vamana_exec_runs_total")
	}
	if _, ok := metrics.Counters["vamana_query_latency_ns_p99"]; !ok {
		t.Error("metrics counters missing histogram p99")
	}

	var slow []map[string]any
	if err := json.Unmarshal(get("/debug/vamana/slow").Body.Bytes(), &slow); err != nil {
		t.Fatalf("slow: %v", err)
	}
	if len(slow) == 0 {
		t.Error("slow endpoint returned no entries at a 1ns threshold")
	} else {
		for _, key := range []string{"expr", "total_ns", "results", "cache_hit", "pages_read", "records_decoded", "node_cache_hits"} {
			if _, ok := slow[0][key]; !ok {
				t.Errorf("slow entry missing JSON field %q: %v", key, slow[0])
			}
		}
	}

	var traces []*QueryTrace
	if err := json.Unmarshal(get("/debug/vamana/traces").Body.Bytes(), &traces); err != nil {
		t.Fatalf("traces: %v", err)
	}
	if len(traces) == 0 || traces[0].Root == nil {
		t.Fatalf("traces endpoint returned no span trees: %d entries", len(traces))
	}
	var one []*QueryTrace
	if err := json.Unmarshal(get("/debug/vamana/traces?n=1").Body.Bytes(), &one); err != nil {
		t.Fatalf("traces?n=1: %v", err)
	}
	if len(one) != 1 {
		t.Errorf("traces?n=1 returned %d entries", len(one))
	}
	if body := get("/debug/vamana/traces?format=text").Body.String(); !strings.Contains(body, "trace ") {
		t.Errorf("text traces missing header lines:\n%s", body)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/vamana/traces?format=chrome").Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome traces: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("chrome traces contain no events")
	}

	var cache CacheStats
	if err := json.Unmarshal(get("/debug/vamana/plancache").Body.Bytes(), &cache); err != nil {
		t.Fatalf("plancache: %v", err)
	}
	if cache.Hits == 0 {
		t.Error("plancache endpoint shows no hits after a repeated query")
	}

	var docs []struct {
		Name  string `json:"name"`
		Nodes uint64 `json:"nodes"`
	}
	if err := json.Unmarshal(get("/debug/vamana/docs").Body.Bytes(), &docs); err != nil {
		t.Fatalf("docs: %v", err)
	}
	if len(docs) != 1 || docs[0].Name != "auction" || docs[0].Nodes == 0 {
		t.Errorf("docs endpoint: %+v", docs)
	}
}

// TestHistogramQuantileExposition checks that registered histograms emit
// p50/p95/p99 gauges in the text exposition and in Snapshot.
func TestHistogramQuantileExposition(t *testing.T) {
	db := openDB(t)
	doc := loadAuction(t, db, 0.003)
	drainCount(t, db, doc, "//person/address")

	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"vamana_query_latency_ns_p50",
		"vamana_query_latency_ns_p95",
		"vamana_query_latency_ns_p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
