package vamana

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vamana/internal/xmark"
)

// TestChecksumOverheadGate asserts that CRC32C page verification costs
// the warm-cache serving path at most 3% over the same store opened with
// DisableChecksumVerify (the seed pager's behavior: raw reads, no
// trailer check).
//
// Both stores run under a constrained page-cache budget so warm queries
// keep missing the node cache and issuing real pager reads — with the
// default budget the working set is fully cached after warm-up and the
// gate would measure nothing. Methodology follows the governance gate:
// single-goroutine loops, interleaved rounds, best-of-rounds comparison
// (noise on a shared machine is additive, so the minimum converges to
// each path's true cost), and multiple attempts so only a regression
// that exceeds the budget every time fails. Skipped unless
// VAMANA_CHECKSUM_GATE is set — scripts/check.sh runs it.
func TestChecksumOverheadGate(t *testing.T) {
	if os.Getenv("VAMANA_CHECKSUM_GATE") == "" {
		t.Skip("set VAMANA_CHECKSUM_GATE=1 to run the checksum-overhead gate")
	}
	src := xmark.GenerateString(xmark.Config{Factor: xmark.FactorForBytes(256 << 10), Seed: 51})
	open := func(name string, disable bool) (*DB, *Document) {
		db, err := Open(Options{
			Path:                  filepath.Join(t.TempDir(), name),
			CachePages:            64, // keep warm queries reading through the pager
			DisableChecksumVerify: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		doc, err := db.LoadXMLString("auction", src)
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range workloadExprs {
			drainCount(t, db, doc, expr)
		}
		return db, doc
	}
	verDB, verDoc := open("verified.vam", false)
	rawDB, rawDoc := open("raw.vam", true)

	loop := func(db *DB, doc *Document) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := db.Query(doc, workloadExprs[i%len(workloadExprs)])
				if err != nil {
					b.Fatal(err)
				}
				for res.Next() {
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	measure := func(db *DB, doc *Document) float64 {
		return float64(testing.Benchmark(loop(db, doc)).NsPerOp())
	}

	measure(verDB, verDoc) // warm-up round, discarded
	const (
		rounds   = 7
		attempts = 3
		budget   = 1.03
	)
	var ratio float64
	for attempt := 1; attempt <= attempts; attempt++ {
		rawBest, verBest := math.MaxFloat64, math.MaxFloat64
		var raws, vers []float64
		for i := 0; i < rounds; i++ {
			var raw, ver float64
			if i%2 == 0 {
				raw, ver = measure(rawDB, rawDoc), measure(verDB, verDoc)
			} else {
				ver, raw = measure(verDB, verDoc), measure(rawDB, rawDoc)
			}
			raws, vers = append(raws, raw), append(vers, ver)
			rawBest, verBest = min(rawBest, raw), min(verBest, ver)
		}
		ratio = verBest / rawBest
		t.Logf("attempt %d: warm serving ns/op unverified %v (best %.0f), verified %v (best %.0f), best-of-rounds ratio %.3f",
			attempt, raws, rawBest, vers, verBest, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("checksum verification overhead %.1f%% exceeds the 3%% budget on all %d attempts", 100*(ratio-1), attempts)
}
