package vamana_test

// BenchmarkMixedReadWrite measures the tentpole concurrency claims of
// the snapshot/transaction API: reader throughput alone, reader
// throughput while a writer commits transactions in the background, and
// raw write-transaction throughput. Results land in
// BENCH_concurrency.json next to the figure data.

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"vamana"
	"vamana/internal/bench"
)

// BenchmarkMixedReadWrite serves the paper workload Q1-Q5 through
// DB.Query (the auto-snapshot path) in three modes:
//
//   - read-solo: RunParallel readers, no writer — the baseline.
//   - read-with-writer: the same readers while a background goroutine
//     commits one DB.Update transaction (insert + delete on a scratch
//     document) every writerEvery — the reader-isolation story: every
//     commit installs a fresh shared snapshot under the readers.
//   - write-only: b.N committed transactions back to back, each one
//     insert + delete batched into a single group-committed version.
//
// The writer is paced, not spinning: an unthrottled in-memory commit
// loop measures CPU timesharing on small machines (see
// TestMixedReadWriteGate), while a fixed pace makes read-solo and
// read-with-writer comparable across runs.
func BenchmarkMixedReadWrite(b *testing.B) {
	const (
		docKB       = 32
		writerEvery = 10 * time.Millisecond
	)
	type modeResult struct {
		NsPerOp    float64 `json:"ns_per_op"`
		QueriesSec float64 `json:"queries_per_sec"`
		Ops        int     `json:"ops"`
	}
	report := struct {
		Benchmark     string                `json:"benchmark"`
		DocKB         int                   `json:"doc_kb"`
		Goroutines    int                   `json:"goroutines"`
		WriterEveryMS float64               `json:"writer_every_ms"`
		Queries       []string              `json:"queries"`
		Modes         map[string]modeResult `json:"modes"`
		ReadSlowdown  float64               `json:"read_slowdown_with_writer"`
	}{
		Benchmark:     "BenchmarkMixedReadWrite",
		DocKB:         docKB,
		Goroutines:    runtime.GOMAXPROCS(0),
		WriterEveryMS: float64(writerEvery) / float64(time.Millisecond),
		Modes:         map[string]modeResult{},
	}
	for _, q := range bench.Queries {
		report.Queries = append(report.Queries, q.ID)
	}

	sf, err := bench.NewFixture(docKB<<10, 71, false)
	if err != nil {
		b.Fatal(err)
	}
	defer sf.Close()
	db, err := vamana.Open(vamana.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("auction", sf.Source())
	if err != nil {
		b.Fatal(err)
	}
	scratch, err := db.LoadXMLString("scratch", `<pad><slot/></pad>`)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range bench.Queries {
		res, err := db.Query(doc, q.XPath)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Keys(); err != nil {
			b.Fatal(err)
		}
	}

	readOne := func(i int) error {
		q := bench.Queries[i%len(bench.Queries)]
		res, err := db.Query(doc, q.XPath)
		if err != nil {
			return err
		}
		for res.Next() {
		}
		return res.Err()
	}
	writeOne := func() error {
		return db.Update(func(tx *vamana.Txn) error {
			k, err := tx.InsertElement(scratch, "a", -1, "w")
			if err != nil {
				return err
			}
			return tx.DeleteSubtree(scratch, k)
		})
	}
	startWriter := func() (stop func()) {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(writerEvery)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
				}
				if err := writeOne(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		return func() { close(done); wg.Wait() }
	}

	runReaders := func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := readOne(i); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	}
	record := func(name string, b *testing.B) {
		ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		report.Modes[name] = modeResult{NsPerOp: ns, QueriesSec: 1e9 / ns, Ops: b.N}
	}

	b.Run("mode=read-solo", func(b *testing.B) {
		b.ResetTimer()
		runReaders(b)
		b.StopTimer()
		record("read-solo", b)
	})
	b.Run("mode=read-with-writer", func(b *testing.B) {
		stop := startWriter()
		b.ResetTimer()
		runReaders(b)
		b.StopTimer()
		stop()
		record("read-with-writer", b)
	})
	b.Run("mode=write-only", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := writeOne(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		record("write-only", b)
	})

	solo, okS := report.Modes["read-solo"]
	mixed, okM := report.Modes["read-with-writer"]
	if !okS || !okM || solo.NsPerOp <= 0 {
		return
	}
	report.ReadSlowdown = mixed.NsPerOp / solo.NsPerOp
	b.Logf("read slowdown with paced writer: %.3fx", report.ReadSlowdown)
	// Smoke runs (-benchtime 1x) produce single-iteration noise; only
	// record results from runs that actually measured.
	if solo.Ops < 100 || mixed.Ops < 100 {
		b.Logf("too few iterations to record; BENCH_concurrency.json left untouched")
		return
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_concurrency.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
