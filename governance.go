package vamana

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vamana/internal/govern"
	"vamana/internal/xpath"
)

// Error taxonomy. Every public method returns errors that compose with
// errors.Is / errors.As:
//
//	errors.Is(err, vamana.ErrNoSuchDocument)
//	errors.Is(err, vamana.ErrDeadlineExceeded)   // engine-level
//	errors.Is(err, context.DeadlineExceeded)      // context-level (same err)
//	var be *vamana.BudgetError; errors.As(err, &be) // which budget, usage
//	var se *vamana.SyntaxError; errors.As(err, &se) // parse position
//	errors.Is(err, vamana.ErrChecksum)              // storage corruption (storage.go)
var (
	// ErrNoSuchDocument reports a document name that is not loaded.
	ErrNoSuchDocument = errors.New("vamana: no such document")
	// ErrCanceled reports a query stopped because its context was
	// canceled. It satisfies errors.Is(err, context.Canceled).
	ErrCanceled = govern.ErrCanceled
	// ErrDeadlineExceeded reports a query stopped by its context deadline
	// or per-query Timeout. It satisfies
	// errors.Is(err, context.DeadlineExceeded).
	ErrDeadlineExceeded = govern.ErrDeadlineExceeded
	// ErrBudgetExceeded reports a query stopped by a per-query resource
	// budget. The concrete error is a *BudgetError naming the budget and
	// the consumption at trip time.
	ErrBudgetExceeded = govern.ErrBudgetExceeded
)

// BudgetError carries which resource budget a query tripped (Budget:
// "results", "pages-read" or "decoded-records") and the Limit/Used pair
// at trip time. It unwraps to ErrBudgetExceeded.
type BudgetError = govern.BudgetError

// SyntaxError is an XPath parse failure with the byte offset of the
// offending token. Compile errors wrap it; recover with errors.As.
type SyntaxError = xpath.SyntaxError

// Limits is a query's resource-budget set. The zero value is fully
// unlimited; each zero field leaves that budget off. Budgets compose with
// context cancellation: whichever trips first stops the query, with a
// distinct typed error either way.
type Limits = govern.Limits

// QueryOption adjusts one query run, layered over the database's
// Options.DefaultLimits (per-query settings win field by field).
type QueryOption func(*queryConfig)

type queryConfig struct {
	limits  Limits
	ordered bool
	// start/vars are the run's initial context node and variable
	// bindings; fromSet records that From was supplied (distinguishing
	// an explicit empty key from the default document root).
	start   string
	vars    map[string][]string
	fromSet bool
}

// config resolves the DB's default limits plus per-query options.
func (db *DB) config(opts []QueryOption) queryConfig {
	cfg := queryConfig{limits: db.defaults}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithTimeout bounds the query's wall-clock time. It composes with any
// context deadline — the earlier one wins.
func WithTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.limits.Timeout = d }
}

// WithMaxResults bounds the number of results delivered: exactly n
// results can stream out, and materializing the (n+1)th fails the query
// with a *BudgetError.
func WithMaxResults(n uint64) QueryOption {
	return func(c *queryConfig) { c.limits.MaxResults = n }
}

// WithMaxPagesRead bounds the number of index pages the query may read
// from the pager (node-cache hits are free).
func WithMaxPagesRead(n uint64) QueryOption {
	return func(c *queryConfig) { c.limits.MaxPagesRead = n }
}

// WithMaxDecodedRecords bounds the number of clustered-index records the
// query may decode.
func WithMaxDecodedRecords(n uint64) QueryOption {
	return func(c *queryConfig) { c.limits.MaxDecodedRecords = n }
}

// WithLimits replaces the whole budget set for this query, including the
// database defaults (zero fields mean unlimited, not "inherit").
func WithLimits(l Limits) QueryOption {
	return func(c *queryConfig) { c.limits = l }
}

// Ordered delivers the run's results in document order. The result set
// is materialized and sorted before delivery, so budgets and
// cancellation apply while it is being built; omit it when streaming
// delivery matters more than ordering (reverse axes otherwise stream in
// axis order).
func Ordered() QueryOption {
	return func(c *queryConfig) { c.ordered = true }
}

// From starts the run at an explicit initial context node — a FLEX key
// previously obtained from a result — instead of the document root, with
// optional variable bindings for $name references (nil for none).
func From(startKey string, vars map[string][]string) QueryOption {
	return func(c *queryConfig) { c.start = startKey; c.vars = vars; c.fromSet = true }
}

// QueryContext is Query under governance: the run observes ctx's
// cancellation and deadline end to end — the operator pull loop, the MASS
// axis cursors and the B+-tree seeks all poll it, amortized so the
// per-tuple cost is an increment and a branch — plus any resource budgets
// from opts layered over Options.DefaultLimits. A canceled or expired ctx
// fails before the plan cache or storage is touched.
//
// A stopped query returns the matching typed error through Results.Err:
// ErrCanceled, ErrDeadlineExceeded, or a *BudgetError; its partially
// streamed results remain valid, and its resources (executor state,
// index cursors) are released.
func (db *DB) QueryContext(ctx context.Context, doc *Document, expr string, opts ...QueryOption) (*Results, error) {
	cfg := db.config(opts)
	// A snapshot-bound handle always queries its snapshot's pinned
	// version.
	if doc.snap != nil {
		if doc.snap.closed.Load() {
			return nil, ErrSnapshotClosed
		}
		return doc.snap.queryContext(ctx, doc, expr, cfg)
	}
	// Auto-snapshot: serve from the shared snapshot when one is fresh,
	// so a long result stream never observes a concurrent writer
	// mid-flight. The temporary reference covers query startup; from
	// then on the iterator holds its own pin until it finishes.
	if sn := db.acquireShared(); sn != nil {
		it, err := sn.QueryContext(ctx, doc.id, expr, cfg.limits)
		sn.Unref()
		if err != nil {
			return nil, err
		}
		return &Results{doc: doc, it: it}, nil
	}
	it, err := db.engine.QueryContext(ctx, doc.id, expr, cfg.limits)
	if err != nil {
		return nil, err
	}
	return &Results{doc: doc, it: it}, nil
}

// ExecuteContext is Execute under governance (see DB.QueryContext).
//
// Deprecated: use Run (same signature and behavior).
func (q *Query) ExecuteContext(ctx context.Context, doc *Document, opts ...QueryOption) (*Results, error) {
	return q.Run(ctx, doc, opts...)
}

// ExecuteOrderedContext is ExecuteOrdered under governance.
//
// Deprecated: use Run with Ordered.
func (q *Query) ExecuteOrderedContext(ctx context.Context, doc *Document, opts ...QueryOption) (*Results, error) {
	return q.Run(ctx, doc, append(opts, Ordered())...)
}

// ExecuteFromContext is ExecuteFrom under governance.
//
// Deprecated: use Run with From.
func (q *Query) ExecuteFromContext(ctx context.Context, doc *Document, startKey string, vars map[string][]string, opts ...QueryOption) (*Results, error) {
	return q.Run(ctx, doc, append(opts, From(startKey, vars))...)
}

// wrapNoDoc translates the storage layer's unknown-document error into
// the public sentinel, annotated with the name.
func wrapNoDoc(err error, name string) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %q", ErrNoSuchDocument, name)
}
